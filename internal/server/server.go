// Package server exposes the blowfish library as a concurrent
// JSON-over-HTTP policy-release service: clients declare domains and
// secret-graph policies (Sections 3–5 of the paper), upload datasets,
// open budgeted sessions, and draw histogram, cumulative-histogram and
// range-query releases until the session's ε budget is exhausted.
//
// Every policy is compiled once at registration (blowfish.Compile): its
// sensitivities, partition block index and range-tree layout are reused by
// every session, and dataset count vectors are indexed on first release and
// shared across the policy's sessions, so repeated releases never rescan
// the uploaded rows.
//
// The server is safe under full concurrency: registries are guarded by a
// read-write mutex, every session's engine draws noise from a sharded pool
// (one stream per CPU) so parallel releases do not serialize on a source
// mutex, and budget charges are atomic — parallel release requests against
// one session can never overspend its ε (sequential composition, Theorem
// 4.1).
package server

import (
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blowfish"
)

// Config tunes a Server. The zero value is usable.
type Config struct {
	// Seed is the base seed per-session noise sources are derived from.
	// Two servers with the same seed, the same request sequence and
	// explicit session seeds produce identical releases.
	Seed int64
	// SessionTTL expires sessions idle for longer than this; zero means
	// sessions never expire.
	SessionTTL time.Duration
	// MaxBodyBytes caps request bodies; defaults to 32 MiB.
	MaxBodyBytes int64
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
	// Ingest tunes the per-dataset event ingestors (batch size, flush
	// interval, queue depth). Zero values take the library defaults.
	Ingest blowfish.StreamIngestConfig
	// MaxEventsPerRequest caps one events POST; defaults to 100k.
	MaxEventsPerRequest int
	// MaxLongPollWait caps the wait_ms long-poll parameter of the stream
	// releases endpoint; defaults to 30s.
	MaxLongPollWait time.Duration
	// Durability enables the write-ahead log and snapshots. The zero value
	// (empty Dir) keeps the server fully in-memory — the zero-config
	// default every test and benchmark runs on.
	Durability DurabilityConfig
	// Logger receives structured server events (recovery phases, epoch
	// closes, shutdown drains). Nil discards them.
	Logger *slog.Logger
	// CloseDrainTimeout bounds how long Close waits for stream tickers and
	// ingest writers to exit after signaling them; defaults to 10s.
	// Goroutines still alive at the deadline are logged and counted in the
	// blowfish_close_leaked_goroutines gauge instead of blocking shutdown
	// forever.
	CloseDrainTimeout time.Duration
}

const (
	defaultMaxEventsPerRequest = 100_000
	defaultMaxLongPollWait     = 30 * time.Second
	defaultCloseDrainTimeout   = 10 * time.Second
)

const defaultMaxBodyBytes = 32 << 20

// Server is the in-memory policy-release service. Create with New; it
// implements http.Handler.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics *serverMetrics
	logger  *slog.Logger

	mu       sync.RWMutex
	policies map[string]*policyEntry
	datasets map[string]*datasetEntry
	sessions map[string]*sessionEntry
	streams  map[string]*streamEntry
	nextID   [4]uint64 // policy, dataset, session, stream counters
	closed   bool

	nextSeed atomic.Int64

	// persist is nil for in-memory servers; when set, every state-changing
	// operation is journaled to the write-ahead log before it is
	// acknowledged, and Checkpoint snapshots the registries. See persist.go
	// and recover.go.
	persist *persistence
}

type policyEntry struct {
	id    string
	pol   *blowfish.Policy
	attrs []AttrSpec
	// graph is the wire-level secret-graph spec the policy was registered
	// with, kept so snapshots and WAL replay can rebuild the compiled plan
	// from the client's own declaration.
	graph GraphSpec
	// cp is the policy compiled into the release engine's plan at
	// registration: every session minted from it shares the precomputed
	// sensitivities, tree layouts and dataset indexes.
	cp *blowfish.CompiledPolicy
	// part is non-nil for partition policies; histogram releases over such
	// policies answer the block histogram h_P.
	part blowfish.Partition
	// histSens is S(h, P), computed once at registration.
	histSens float64
	// edges and components describe the compiled structure of explicit
	// secret graphs (zero for implicit kinds).
	edges, components int
}

type datasetEntry struct {
	id    string
	ds    *blowfish.Dataset
	attrs []AttrSpec
	// tbl coordinates streaming writers (event batches, window expiry)
	// against release readers: every release over ds runs under its read
	// lock, every mutation under its write lock.
	tbl *blowfish.StreamTable
	// ing is the dataset's single-writer event log, started lazily on the
	// first events POST (an upload-once dataset costs no goroutine) and
	// stopped on dataset deletion / server Close.
	ingOnce    sync.Once
	ing        *blowfish.StreamIngestor
	ingErr     error
	ingStarted atomic.Bool
	ingCfg     blowfish.StreamIngestConfig
}

// ingestor returns the dataset's event-log writer, starting it on first use.
func (e *datasetEntry) ingestor() (*blowfish.StreamIngestor, error) {
	e.ingOnce.Do(func() {
		e.ing, e.ingErr = blowfish.NewStreamIngestor(e.tbl, e.ingCfg)
		if e.ingErr == nil {
			e.ingStarted.Store(true)
		}
	})
	return e.ing, e.ingErr
}

// startedIngestor returns the writer only if one is already running —
// flush paths use it so they never spawn a goroutine just to drain an
// event log that was never opened.
func (e *datasetEntry) startedIngestor() *blowfish.StreamIngestor {
	if !e.ingStarted.Load() {
		return nil
	}
	return e.ing
}

// closeIngestor stops the event-log goroutine if it was ever started, and
// pins the never-started case to an error so a late events POST cannot
// spawn a writer the shutdown already missed.
func (e *datasetEntry) closeIngestor() {
	if done := e.shutdownIngestor(); done != nil {
		<-done
	}
}

// shutdownIngestor is the non-blocking half of closeIngestor: it pins the
// never-started case, signals a running writer to drain, and returns the
// channel that closes when the writer has exited (nil if none ever ran).
func (e *datasetEntry) shutdownIngestor() <-chan struct{} {
	e.ingOnce.Do(func() { e.ingErr = errShuttingDown })
	if e.ing == nil {
		return nil
	}
	return e.ing.Shutdown()
}

var errShuttingDown = fmt.Errorf("server is shutting down")

type streamEntry struct {
	id        string
	policyID  string
	datasetID string
	pol       *policyEntry
	de        *datasetEntry
	// sess is the dedicated session backing the stream's budget schedule;
	// its accountant is what epoch closes charge.
	sess *blowfish.Session
	st   *blowfish.Stream
	// req is the creation request with the noise seed/shard resolution
	// pinned, so snapshots and WAL replay rebuild an identical stream.
	req    CreateStreamRequest
	seed   int64
	shards int
}

type sessionEntry struct {
	id       string
	policyID string
	// pol is the policy entry captured at session creation: releases use
	// this reference rather than re-resolving policyID, so a policy
	// deletion racing session creation can never change which mechanism a
	// live session's releases go through.
	pol  *policyEntry
	sess *blowfish.Session
	// lastUsed is the unix-nano timestamp of the latest access, advanced
	// atomically so reads can stay under the server's read lock.
	lastUsed atomic.Int64
	// seed and shards pin the noise construction for snapshots and replay.
	seed   int64
	shards int
	// relMu serializes this session's releases on the durable path: a
	// release and its WAL record form one critical section, so a
	// checkpoint (which takes the same lock to export the ledger, the
	// noise state and the ordinal together) can never observe one without
	// the other. In-memory servers never take it.
	relMu sync.Mutex
	// ordinal counts journaled releases; guarded by relMu. WAL replay
	// skips release records with ordinal <= the snapshot's.
	ordinal uint64
}

// New creates a Server.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.MaxEventsPerRequest <= 0 {
		cfg.MaxEventsPerRequest = defaultMaxEventsPerRequest
	}
	if cfg.MaxLongPollWait <= 0 {
		cfg.MaxLongPollWait = defaultMaxLongPollWait
	}
	if cfg.CloseDrainTimeout <= 0 {
		cfg.CloseDrainTimeout = defaultCloseDrainTimeout
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		cfg:      cfg,
		metrics:  newServerMetrics(),
		logger:   logger,
		policies: make(map[string]*policyEntry),
		datasets: make(map[string]*datasetEntry),
		sessions: make(map[string]*sessionEntry),
		streams:  make(map[string]*streamEntry),
	}
	// The shared ingest instruments flow into every dataset's writer via
	// the base ingest config.
	s.cfg.Ingest.Metrics = s.metrics.ingest
	s.nextSeed.Store(cfg.Seed)
	s.registerCollectors()
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

func (s *Server) routes() {
	s.handle("GET /v1/healthz", s.handleHealth)
	s.handle("POST /v1/policies", s.handleCreatePolicy)
	s.handle("GET /v1/policies", s.handleListPolicies)
	s.handle("GET /v1/policies/{id}", s.handleGetPolicy)
	s.handle("DELETE /v1/policies/{id}", s.handleDeletePolicy)
	s.handle("POST /v1/datasets", s.handleCreateDataset)
	s.handle("GET /v1/datasets", s.handleListDatasets)
	s.handle("GET /v1/datasets/{id}", s.handleGetDataset)
	s.handle("DELETE /v1/datasets/{id}", s.handleDeleteDataset)
	s.handle("POST /v1/datasets/{id}/events", s.handleDatasetEvents)
	s.handle("POST /v1/sessions", s.handleCreateSession)
	s.handle("GET /v1/sessions", s.handleListSessions)
	s.handle("GET /v1/sessions/{id}", s.handleGetSession)
	s.handle("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	s.handle("POST /v1/sessions/{id}/releases/histogram", s.handleHistogram)
	s.handle("POST /v1/sessions/{id}/releases/cumulative", s.handleCumulative)
	s.handle("POST /v1/sessions/{id}/releases/range", s.handleRange)
	s.handle("POST /v1/streams", s.handleCreateStream)
	s.handle("GET /v1/streams", s.handleListStreams)
	s.handle("GET /v1/streams/{id}", s.handleGetStream)
	s.handle("DELETE /v1/streams/{id}", s.handleDeleteStream)
	s.handle("POST /v1/streams/{id}/epochs", s.handleCloseEpoch)
	s.handle("GET /v1/streams/{id}/releases", s.handleStreamReleases)
	s.handle("POST /v1/admin/checkpoint", s.handleCheckpoint)
	// The exposition itself is served unwrapped: a scrape should not
	// perturb the request counters it reads.
	s.mux.Handle("GET /metrics", s.metrics.reg.Handler())
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	s.mux.ServeHTTP(w, r)
}

// newID mints the next identifier in one of the three namespaces.
func (s *Server) newID(kind int, prefix string) string {
	s.nextID[kind]++
	return fmt.Sprintf("%s-%d", prefix, s.nextID[kind])
}

// ExpireSessions drops sessions idle past the configured TTL and returns
// how many were removed. Call it periodically (cmd/blowfish-serve runs a
// sweeper goroutine); a zero TTL makes it a no-op.
func (s *Server) ExpireSessions() int {
	if s.cfg.SessionTTL <= 0 {
		return 0
	}
	cutoff := s.cfg.Now().Add(-s.cfg.SessionTTL).UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, e := range s.sessions {
		if e.lastUsed.Load() < cutoff {
			// Best-effort journal: if the WAL is down (failures are
			// sticky), expire in memory anyway — holding every idle
			// session forever would leak without bound. A restart may
			// resurrect the session from the snapshot, where the next
			// sweep expires it again; its ledger survives either way, so
			// budget accounting is unaffected.
			_ = s.journalDelete(nsSession, id)
			delete(s.sessions, id)
			n++
		}
	}
	return n
}

// SessionCount returns the number of live sessions (diagnostics).
func (s *Server) SessionCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sessions)
}

// StreamCount returns the number of live streams (diagnostics).
func (s *Server) StreamCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.streams)
}

// Close stops every background goroutine the server owns: stream epoch
// tickers and per-dataset event-log writers (flushing their queues). On a
// durable server the shutdown then checkpoints: the ingest queues are fully
// drained *before* the final snapshot is taken, so every acknowledged event
// is in it — a graceful shutdown loses nothing, and the next boot recovers
// from the snapshot alone with no WAL tail to replay. A failed final
// snapshot is safe (the WAL still holds every record; recovery just
// replays more). It is idempotent; stream and dataset creation after Close
// is refused. In-flight HTTP requests are the caller's to drain
// (http.Server.Shutdown does).
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	streams := make([]*streamEntry, 0, len(s.streams))
	for _, e := range s.streams {
		streams = append(streams, e)
	}
	datasets := make([]*datasetEntry, 0, len(s.datasets))
	for _, e := range s.datasets {
		datasets = append(datasets, e)
	}
	s.mu.Unlock()
	// Drain in ID order: Ingestor.Close journals queued events, so the
	// shutdown tail of the WAL gets a reproducible cross-dataset order
	// instead of whatever the map iteration produced.
	sort.Slice(streams, func(i, j int) bool { return byID(streams[i].id, streams[j].id) < 0 })
	sort.Slice(datasets, func(i, j int) bool { return byID(datasets[i].id, datasets[j].id) < 0 })
	start := time.Now()
	// One drain deadline covers the whole shutdown: a wedged ticker or
	// writer is logged and counted instead of blocking Close forever.
	expired := make(chan struct{})
	watchdog := time.AfterFunc(s.cfg.CloseDrainTimeout, func() { close(expired) })
	defer watchdog.Stop()
	leaked := 0
	waitOne := func(what, id string, done <-chan struct{}) {
		select {
		case <-done:
			return
		default:
		}
		select {
		case <-done:
		case <-expired:
			leaked++
			s.logger.Error("close drain timed out; goroutine still running",
				"what", what, "id", id, "timeout", s.cfg.CloseDrainTimeout)
		}
	}
	// Stop schedulers first so no epoch close races the ingestor drain:
	// signal every ticker at once, then wait for each under the deadline.
	stops := make([]<-chan struct{}, len(streams))
	for i, e := range streams {
		stops[i] = e.st.Shutdown()
	}
	for i, e := range streams {
		waitOne("stream ticker", e.id, stops[i])
	}
	// Drain every event queue: the writer applies (and therefore journals)
	// everything submitted before exiting. Signal-then-wait serially, per
	// dataset, to keep the WAL tail's cross-dataset order reproducible.
	for _, e := range datasets {
		if done := e.shutdownIngestor(); done != nil {
			waitOne("ingest writer", e.id, done)
		}
	}
	s.metrics.closeLeaked.Set(int64(leaked))
	if s.persist != nil {
		s.persist.stopAutoCheckpoint()
		_, _ = s.Checkpoint() // best-effort: the WAL remains authoritative
		_ = s.persist.log.Close()
	}
	if leaked > 0 {
		s.logger.Error("server close left goroutines running",
			"leaked", leaked, "elapsed", time.Since(start))
		return
	}
	s.logger.Info("server closed",
		"streams", len(streams), "datasets", len(datasets), "elapsed", time.Since(start))
}

// CloseLeaked reports how many stream-ticker / ingest-writer goroutines
// the last Close abandoned at its drain deadline (0 after a clean close).
// Tests and the leak watchdog assert on it.
func (s *Server) CloseLeaked() int {
	return int(s.metrics.closeLeaked.Value())
}

// checkOpen refuses resource creation on a closed (shutting down) server.
func (s *Server) checkOpen(w http.ResponseWriter) bool {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		writeError(w, CodeBadRequest, "server is shutting down")
	}
	return !closed
}

// byID orders resource ids of one namespace ("pol-2" < "pol-10") for the
// list endpoints: shorter ids first, then lexicographic — numeric order for
// the server's prefix-counter ids.
func byID(a, b string) int {
	if len(a) != len(b) {
		return len(a) - len(b)
	}
	return strings.Compare(a, b)
}

// snapshotSorted copies one registry under the server's read lock and
// orders the entries by id — the shared skeleton of every list endpoint.
func snapshotSorted[E any](s *Server, m map[string]E, id func(E) string) []E {
	s.mu.RLock()
	out := make([]E, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return byID(id(out[i]), id(out[j])) < 0 })
	return out
}

// getSession looks a session up and refreshes its idle timer.
func (s *Server) getSession(id string) (*sessionEntry, bool) {
	s.mu.RLock()
	e, ok := s.sessions[id]
	s.mu.RUnlock()
	if !ok {
		return nil, false
	}
	e.lastUsed.Store(s.cfg.Now().UnixNano())
	return e, true
}

func (s *Server) getPolicy(id string) (*policyEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.policies[id]
	return e, ok
}

func (s *Server) getDataset(id string) (*datasetEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.datasets[id]
	return e, ok
}

func (s *Server) getStream(id string) (*streamEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.streams[id]
	return e, ok
}

// buildDomain validates an AttrSpec list into a Domain.
func buildDomain(attrs []AttrSpec) (*blowfish.Domain, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("domain needs at least one attribute")
	}
	out := make([]blowfish.Attribute, len(attrs))
	for i, a := range attrs {
		out[i] = blowfish.Attribute{Name: a.Name, Size: a.Size}
	}
	return blowfish.NewDomain(out...)
}

// buildGraph constructs the secret graph named by spec, returning the
// partition alongside for kind "partition".
func buildGraph(dom *blowfish.Domain, spec GraphSpec) (blowfish.SecretGraph, blowfish.Partition, error) {
	return blowfish.BuildGraph(dom, spec)
}
