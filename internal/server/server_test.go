package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// testClock is a fake clock advanced manually by expiry tests.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func newTestServer(t *testing.T) (*Server, *testClock) {
	t.Helper()
	clk := &testClock{now: time.Unix(1700000000, 0)}
	return New(Config{Seed: 42, SessionTTL: time.Hour, Now: clk.Now}), clk
}

// do issues one in-process request and returns the recorder.
func do(t *testing.T, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// decode parses a response body into out, failing the test on error.
func decode[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var out T
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode response %q: %v", w.Body.String(), err)
	}
	return out
}

// wantError asserts a structured error with the given status and code.
func wantError(t *testing.T, w *httptest.ResponseRecorder, status int, code string) {
	t.Helper()
	if w.Code != status {
		t.Fatalf("status = %d, want %d (body %s)", w.Code, status, w.Body.String())
	}
	env := decode[errorEnvelope](t, w)
	if env.Error.Code != code {
		t.Fatalf("error code = %q, want %q (message %q)", env.Error.Code, code, env.Error.Message)
	}
}

// mustCreatePolicy registers a policy and returns its id.
func mustCreatePolicy(t *testing.T, s *Server, req CreatePolicyRequest) string {
	t.Helper()
	w := do(t, s, "POST", "/v1/policies", req)
	if w.Code != http.StatusCreated {
		t.Fatalf("create policy: status %d body %s", w.Code, w.Body.String())
	}
	return decode[PolicyResponse](t, w).ID
}

// mustCreateDataset uploads rows over an inline domain and returns the id.
func mustCreateDataset(t *testing.T, s *Server, req CreateDatasetRequest) string {
	t.Helper()
	w := do(t, s, "POST", "/v1/datasets", req)
	if w.Code != http.StatusCreated {
		t.Fatalf("create dataset: status %d body %s", w.Code, w.Body.String())
	}
	return decode[DatasetResponse](t, w).ID
}

// mustCreateSession opens a session and returns its id.
func mustCreateSession(t *testing.T, s *Server, req CreateSessionRequest) string {
	t.Helper()
	w := do(t, s, "POST", "/v1/sessions", req)
	if w.Code != http.StatusCreated {
		t.Fatalf("create session: status %d body %s", w.Code, w.Body.String())
	}
	return decode[SessionResponse](t, w).ID
}

// lineRows returns n rows over a 1-D domain, values cycling mod size.
func lineRows(n, size int) [][]int {
	rows := make([][]int, n)
	for i := range rows {
		rows[i] = []int{i % size}
	}
	return rows
}

var lineDomain = []AttrSpec{{Name: "v", Size: 64}}

func TestCreatePolicy(t *testing.T) {
	tests := []struct {
		name     string
		req      CreatePolicyRequest
		status   int
		code     string // expected error code when status != 201
		wantSens float64
	}{
		{
			name:     "full domain",
			req:      CreatePolicyRequest{Domain: lineDomain, Graph: GraphSpec{Kind: "full"}},
			status:   http.StatusCreated,
			wantSens: 2,
		},
		{
			name:     "attribute secrets",
			req:      CreatePolicyRequest{Domain: []AttrSpec{{Name: "a", Size: 4}, {Name: "b", Size: 8}}, Graph: GraphSpec{Kind: "attr"}},
			status:   http.StatusCreated,
			wantSens: 2,
		},
		{
			name:     "l1 threshold",
			req:      CreatePolicyRequest{Domain: lineDomain, Graph: GraphSpec{Kind: "l1", Theta: 8}},
			status:   http.StatusCreated,
			wantSens: 2,
		},
		{
			name:     "linf threshold",
			req:      CreatePolicyRequest{Domain: []AttrSpec{{Name: "x", Size: 16}, {Name: "y", Size: 16}}, Graph: GraphSpec{Kind: "linf", Theta: 2}},
			status:   http.StatusCreated,
			wantSens: 2,
		},
		{
			name:     "line graph",
			req:      CreatePolicyRequest{Domain: lineDomain, Graph: GraphSpec{Kind: "line"}},
			status:   http.StatusCreated,
			wantSens: 2,
		},
		{
			name:     "partition by blocks",
			req:      CreatePolicyRequest{Domain: []AttrSpec{{Name: "x", Size: 16}, {Name: "y", Size: 16}}, Graph: GraphSpec{Kind: "partition", Blocks: 16}},
			status:   http.StatusCreated,
			wantSens: 2,
		},
		{
			name:     "partition by widths",
			req:      CreatePolicyRequest{Domain: lineDomain, Graph: GraphSpec{Kind: "partition", Widths: []int{8}}},
			status:   http.StatusCreated,
			wantSens: 2,
		},
		{
			name:   "unknown graph kind",
			req:    CreatePolicyRequest{Domain: lineDomain, Graph: GraphSpec{Kind: "banana"}},
			status: http.StatusBadRequest,
			code:   CodeBadRequest,
		},
		{
			name:   "empty domain",
			req:    CreatePolicyRequest{Graph: GraphSpec{Kind: "full"}},
			status: http.StatusBadRequest,
			code:   CodeBadRequest,
		},
		{
			name:   "non-positive attribute size",
			req:    CreatePolicyRequest{Domain: []AttrSpec{{Name: "v", Size: 0}}, Graph: GraphSpec{Kind: "full"}},
			status: http.StatusBadRequest,
			code:   CodeBadRequest,
		},
		{
			name:   "l1 without theta",
			req:    CreatePolicyRequest{Domain: lineDomain, Graph: GraphSpec{Kind: "l1"}},
			status: http.StatusBadRequest,
			code:   CodeBadRequest,
		},
		{
			name:   "partition without blocks or widths",
			req:    CreatePolicyRequest{Domain: lineDomain, Graph: GraphSpec{Kind: "partition"}},
			status: http.StatusBadRequest,
			code:   CodeBadRequest,
		},
		{
			name:   "line graph over 2-D domain",
			req:    CreatePolicyRequest{Domain: []AttrSpec{{Name: "x", Size: 4}, {Name: "y", Size: 4}}, Graph: GraphSpec{Kind: "line"}},
			status: http.StatusBadRequest,
			code:   CodeBadRequest,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s, _ := newTestServer(t)
			w := do(t, s, "POST", "/v1/policies", tc.req)
			if tc.status != http.StatusCreated {
				wantError(t, w, tc.status, tc.code)
				return
			}
			if w.Code != http.StatusCreated {
				t.Fatalf("status = %d, want 201 (body %s)", w.Code, w.Body.String())
			}
			resp := decode[PolicyResponse](t, w)
			if resp.ID == "" || resp.Name == "" {
				t.Fatalf("incomplete policy response: %+v", resp)
			}
			if resp.HistogramSensitivity != tc.wantSens {
				t.Errorf("histogram sensitivity = %v, want %v", resp.HistogramSensitivity, tc.wantSens)
			}
			got := do(t, s, "GET", "/v1/policies/"+resp.ID, nil)
			if got.Code != http.StatusOK {
				t.Fatalf("get policy: status %d", got.Code)
			}
		})
	}
}

func TestCreatePolicyRejectsMalformedJSON(t *testing.T) {
	s, _ := newTestServer(t)
	for _, body := range []string{"{not json", `{"domain": [], "grap": {}}`} {
		req := httptest.NewRequest("POST", "/v1/policies", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		wantError(t, w, http.StatusBadRequest, CodeBadRequest)
	}
}

func TestGetPolicyUnknown(t *testing.T) {
	s, _ := newTestServer(t)
	wantError(t, do(t, s, "GET", "/v1/policies/pol-99", nil), http.StatusNotFound, CodeUnknownPolicy)
}

func TestCreateDataset(t *testing.T) {
	s, _ := newTestServer(t)
	polID := mustCreatePolicy(t, s, CreatePolicyRequest{Domain: lineDomain, Graph: GraphSpec{Kind: "full"}})

	tests := []struct {
		name   string
		req    CreateDatasetRequest
		status int
		code   string
	}{
		{
			name:   "inline domain",
			req:    CreateDatasetRequest{Domain: lineDomain, Rows: lineRows(10, 64)},
			status: http.StatusCreated,
		},
		{
			name:   "borrow policy domain",
			req:    CreateDatasetRequest{PolicyID: polID, Rows: lineRows(5, 64)},
			status: http.StatusCreated,
		},
		{
			name:   "both policy and domain",
			req:    CreateDatasetRequest{PolicyID: polID, Domain: lineDomain, Rows: lineRows(1, 64)},
			status: http.StatusBadRequest,
			code:   CodeBadRequest,
		},
		{
			name:   "neither policy nor domain",
			req:    CreateDatasetRequest{Rows: lineRows(1, 64)},
			status: http.StatusBadRequest,
			code:   CodeBadRequest,
		},
		{
			name:   "unknown policy",
			req:    CreateDatasetRequest{PolicyID: "pol-404", Rows: lineRows(1, 64)},
			status: http.StatusNotFound,
			code:   CodeUnknownPolicy,
		},
		{
			name:   "row value out of range",
			req:    CreateDatasetRequest{Domain: lineDomain, Rows: [][]int{{64}}},
			status: http.StatusBadRequest,
			code:   CodeBadRequest,
		},
		{
			name:   "row arity mismatch",
			req:    CreateDatasetRequest{Domain: lineDomain, Rows: [][]int{{1, 2}}},
			status: http.StatusBadRequest,
			code:   CodeBadRequest,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, s, "POST", "/v1/datasets", tc.req)
			if tc.status != http.StatusCreated {
				wantError(t, w, tc.status, tc.code)
				return
			}
			if w.Code != http.StatusCreated {
				t.Fatalf("status = %d, want 201 (body %s)", w.Code, w.Body.String())
			}
			resp := decode[DatasetResponse](t, w)
			if resp.Rows != len(tc.req.Rows) {
				t.Errorf("rows = %d, want %d", resp.Rows, len(tc.req.Rows))
			}
			got := do(t, s, "GET", "/v1/datasets/"+resp.ID, nil)
			if got.Code != http.StatusOK {
				t.Fatalf("get dataset: status %d", got.Code)
			}
		})
	}
}

func TestCreateSessionValidation(t *testing.T) {
	s, _ := newTestServer(t)
	polID := mustCreatePolicy(t, s, CreatePolicyRequest{Domain: lineDomain, Graph: GraphSpec{Kind: "full"}})

	wantError(t, do(t, s, "POST", "/v1/sessions", CreateSessionRequest{PolicyID: "pol-404", Budget: 1}),
		http.StatusNotFound, CodeUnknownPolicy)
	wantError(t, do(t, s, "POST", "/v1/sessions", CreateSessionRequest{PolicyID: polID, Budget: 0}),
		http.StatusBadRequest, CodeBadRequest)
	wantError(t, do(t, s, "POST", "/v1/sessions", CreateSessionRequest{PolicyID: polID, Budget: -2}),
		http.StatusBadRequest, CodeBadRequest)

	sessID := mustCreateSession(t, s, CreateSessionRequest{PolicyID: polID, Budget: 1.5})
	resp := decode[SessionResponse](t, do(t, s, "GET", "/v1/sessions/"+sessID, nil))
	if resp.Budget != 1.5 || resp.Remaining != 1.5 || resp.Spent != 0 {
		t.Fatalf("fresh session ledger: %+v", resp)
	}
}

func TestSessionDeleteAndExpiry(t *testing.T) {
	s, clk := newTestServer(t)
	polID := mustCreatePolicy(t, s, CreatePolicyRequest{Domain: lineDomain, Graph: GraphSpec{Kind: "full"}})

	// Delete.
	id := mustCreateSession(t, s, CreateSessionRequest{PolicyID: polID, Budget: 1})
	if w := do(t, s, "DELETE", "/v1/sessions/"+id, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete: status %d", w.Code)
	}
	wantError(t, do(t, s, "GET", "/v1/sessions/"+id, nil), http.StatusNotFound, CodeUnknownSession)
	wantError(t, do(t, s, "DELETE", "/v1/sessions/"+id, nil), http.StatusNotFound, CodeUnknownSession)

	// Expiry: an idle session dies, a touched one survives.
	idle := mustCreateSession(t, s, CreateSessionRequest{PolicyID: polID, Budget: 1})
	live := mustCreateSession(t, s, CreateSessionRequest{PolicyID: polID, Budget: 1})
	clk.Advance(50 * time.Minute)
	do(t, s, "GET", "/v1/sessions/"+live, nil) // refreshes the idle timer
	clk.Advance(30 * time.Minute)              // idle is now 80m old, live 30m
	if n := s.ExpireSessions(); n != 1 {
		t.Fatalf("expired %d sessions, want 1", n)
	}
	wantError(t, do(t, s, "GET", "/v1/sessions/"+idle, nil), http.StatusNotFound, CodeUnknownSession)
	if w := do(t, s, "GET", "/v1/sessions/"+live, nil); w.Code != http.StatusOK {
		t.Fatalf("live session gone: status %d", w.Code)
	}
}

func TestDeletePolicyAndDataset(t *testing.T) {
	s, _ := newTestServer(t)
	polID := mustCreatePolicy(t, s, CreatePolicyRequest{Domain: lineDomain, Graph: GraphSpec{Kind: "full"}})
	dsID := mustCreateDataset(t, s, CreateDatasetRequest{PolicyID: polID, Rows: lineRows(4, 64)})

	// A policy with a live session cannot be deleted.
	sessID := mustCreateSession(t, s, CreateSessionRequest{PolicyID: polID, Budget: 1})
	wantError(t, do(t, s, "DELETE", "/v1/policies/"+polID, nil), http.StatusConflict, CodePolicyInUse)
	if w := do(t, s, "GET", "/v1/policies/"+polID, nil); w.Code != http.StatusOK {
		t.Fatalf("policy vanished after refused delete: %d", w.Code)
	}

	// After the session is gone the policy deletes cleanly.
	if w := do(t, s, "DELETE", "/v1/sessions/"+sessID, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete session: %d", w.Code)
	}
	if w := do(t, s, "DELETE", "/v1/policies/"+polID, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete policy: %d %s", w.Code, w.Body.String())
	}
	wantError(t, do(t, s, "GET", "/v1/policies/"+polID, nil), http.StatusNotFound, CodeUnknownPolicy)
	wantError(t, do(t, s, "DELETE", "/v1/policies/"+polID, nil), http.StatusNotFound, CodeUnknownPolicy)

	// Datasets delete unconditionally.
	if w := do(t, s, "DELETE", "/v1/datasets/"+dsID, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete dataset: %d", w.Code)
	}
	wantError(t, do(t, s, "GET", "/v1/datasets/"+dsID, nil), http.StatusNotFound, CodeUnknownDataset)
	wantError(t, do(t, s, "DELETE", "/v1/datasets/"+dsID, nil), http.StatusNotFound, CodeUnknownDataset)
}

func TestHistogramRelease(t *testing.T) {
	s, _ := newTestServer(t)
	polID := mustCreatePolicy(t, s, CreatePolicyRequest{Domain: lineDomain, Graph: GraphSpec{Kind: "l1", Theta: 4}})
	dsID := mustCreateDataset(t, s, CreateDatasetRequest{PolicyID: polID, Rows: lineRows(100, 64)})
	sessID := mustCreateSession(t, s, CreateSessionRequest{PolicyID: polID, Budget: 1})

	w := do(t, s, "POST", "/v1/sessions/"+sessID+"/releases/histogram", HistogramRequest{DatasetID: dsID, Epsilon: 0.5})
	if w.Code != http.StatusOK {
		t.Fatalf("histogram: status %d body %s", w.Code, w.Body.String())
	}
	resp := decode[HistogramResponse](t, w)
	if len(resp.Counts) != 64 {
		t.Fatalf("len(counts) = %d, want 64", len(resp.Counts))
	}
	if math.Abs(resp.Remaining-0.5) > 1e-9 {
		t.Fatalf("remaining = %v, want 0.5", resp.Remaining)
	}

	// The ledger shows the spend.
	sess := decode[SessionResponse](t, do(t, s, "GET", "/v1/sessions/"+sessID, nil))
	if len(sess.Releases) != 1 || sess.Releases[0].Label != "histogram" {
		t.Fatalf("ledger = %+v", sess.Releases)
	}

	// Invalid epsilon never charges.
	wantError(t, do(t, s, "POST", "/v1/sessions/"+sessID+"/releases/histogram", HistogramRequest{DatasetID: dsID, Epsilon: -1}),
		http.StatusBadRequest, CodeBadRequest)

	// Exhaust, then verify the structured budget error.
	if w := do(t, s, "POST", "/v1/sessions/"+sessID+"/releases/histogram", HistogramRequest{DatasetID: dsID, Epsilon: 0.5}); w.Code != http.StatusOK {
		t.Fatalf("second histogram: status %d", w.Code)
	}
	wantError(t, do(t, s, "POST", "/v1/sessions/"+sessID+"/releases/histogram", HistogramRequest{DatasetID: dsID, Epsilon: 0.1}),
		http.StatusConflict, CodeBudgetExhausted)
}

func TestHistogramDomainMismatch(t *testing.T) {
	s, _ := newTestServer(t)
	polID := mustCreatePolicy(t, s, CreatePolicyRequest{Domain: lineDomain, Graph: GraphSpec{Kind: "full"}})
	otherDS := mustCreateDataset(t, s, CreateDatasetRequest{Domain: []AttrSpec{{Name: "w", Size: 8}}, Rows: lineRows(4, 8)})
	sessID := mustCreateSession(t, s, CreateSessionRequest{PolicyID: polID, Budget: 1})

	wantError(t, do(t, s, "POST", "/v1/sessions/"+sessID+"/releases/histogram", HistogramRequest{DatasetID: otherDS, Epsilon: 0.5}),
		http.StatusUnprocessableEntity, CodeDomainMismatch)
	wantError(t, do(t, s, "POST", "/v1/sessions/"+sessID+"/releases/histogram", HistogramRequest{DatasetID: "ds-404", Epsilon: 0.5}),
		http.StatusNotFound, CodeUnknownDataset)
	wantError(t, do(t, s, "POST", "/v1/sessions/sess-404/releases/histogram", HistogramRequest{DatasetID: otherDS, Epsilon: 0.5}),
		http.StatusNotFound, CodeUnknownSession)
}

func TestPartitionHistogramIsExactAndFree(t *testing.T) {
	s, _ := newTestServer(t)
	// Partition policy whose blocks are the histogram blocks: every secret
	// pair stays inside a block, so h_P has sensitivity 0 and the release
	// is exact and costs nothing (Section 5's coarse-grid observation).
	polID := mustCreatePolicy(t, s, CreatePolicyRequest{
		Domain: lineDomain,
		Graph:  GraphSpec{Kind: "partition", Widths: []int{8}},
	})
	dsID := mustCreateDataset(t, s, CreateDatasetRequest{PolicyID: polID, Rows: lineRows(64, 64)})
	sessID := mustCreateSession(t, s, CreateSessionRequest{PolicyID: polID, Budget: 1})

	w := do(t, s, "POST", "/v1/sessions/"+sessID+"/releases/histogram", HistogramRequest{DatasetID: dsID, Epsilon: 0.5})
	if w.Code != http.StatusOK {
		t.Fatalf("partition histogram: status %d body %s", w.Code, w.Body.String())
	}
	resp := decode[HistogramResponse](t, w)
	if len(resp.Counts) != 8 {
		t.Fatalf("len(counts) = %d, want 8 blocks", len(resp.Counts))
	}
	for i, c := range resp.Counts {
		if c != 8 { // 64 uniform rows over 8 blocks, exact release
			t.Fatalf("block %d = %v, want exactly 8", i, c)
		}
	}
	if resp.Remaining != 1 {
		t.Fatalf("remaining = %v, want 1 (exact release is free)", resp.Remaining)
	}

	// A free release may even be requested with epsilon 0.
	w = do(t, s, "POST", "/v1/sessions/"+sessID+"/releases/histogram", HistogramRequest{DatasetID: dsID})
	if w.Code != http.StatusOK {
		t.Fatalf("epsilon-0 exact release: status %d body %s", w.Code, w.Body.String())
	}
	if free := decode[HistogramResponse](t, w); free.Remaining != 1 {
		t.Fatalf("epsilon-0 release charged budget: remaining %v", free.Remaining)
	}
}

func TestCumulativeRelease(t *testing.T) {
	s, _ := newTestServer(t)
	polID := mustCreatePolicy(t, s, CreatePolicyRequest{Domain: lineDomain, Graph: GraphSpec{Kind: "line"}})
	dsID := mustCreateDataset(t, s, CreateDatasetRequest{PolicyID: polID, Rows: lineRows(200, 64)})
	sessID := mustCreateSession(t, s, CreateSessionRequest{PolicyID: polID, Budget: 1})

	w := do(t, s, "POST", "/v1/sessions/"+sessID+"/releases/cumulative", CumulativeRequest{DatasetID: dsID, Epsilon: 0.5})
	if w.Code != http.StatusOK {
		t.Fatalf("cumulative: status %d body %s", w.Code, w.Body.String())
	}
	resp := decode[CumulativeResponse](t, w)
	if len(resp.Raw) != 64 || len(resp.Inferred) != 64 {
		t.Fatalf("lengths raw=%d inferred=%d, want 64", len(resp.Raw), len(resp.Inferred))
	}
	for i := 1; i < len(resp.Inferred); i++ {
		if resp.Inferred[i] < resp.Inferred[i-1] {
			t.Fatalf("inferred not monotone at %d: %v < %v", i, resp.Inferred[i], resp.Inferred[i-1])
		}
	}
	if resp.Inferred[0] < 0 || resp.Inferred[63] > 200 {
		t.Fatalf("inferred out of [0, n]: first=%v last=%v", resp.Inferred[0], resp.Inferred[63])
	}
}

func TestRangeRelease(t *testing.T) {
	s, _ := newTestServer(t)
	polID := mustCreatePolicy(t, s, CreatePolicyRequest{Domain: lineDomain, Graph: GraphSpec{Kind: "l1", Theta: 8}})
	dsID := mustCreateDataset(t, s, CreateDatasetRequest{PolicyID: polID, Rows: lineRows(500, 64)})
	sessID := mustCreateSession(t, s, CreateSessionRequest{PolicyID: polID, Budget: 2})

	w := do(t, s, "POST", "/v1/sessions/"+sessID+"/releases/range", RangeRequest{
		DatasetID: dsID,
		Epsilon:   1,
		Queries:   []RangeQuery{{Lo: 0, Hi: 63}, {Lo: 10, Hi: 20}, {Lo: 5, Hi: 5}},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("range: status %d body %s", w.Code, w.Body.String())
	}
	resp := decode[RangeResponse](t, w)
	if len(resp.Answers) != 3 {
		t.Fatalf("len(answers) = %d, want 3", len(resp.Answers))
	}
	// 500 rows cycling over 64 values: the full-domain count is ~500; the
	// noisy answer should be in the right ballpark at ε=1.
	if math.Abs(resp.Answers[0]-500) > 200 {
		t.Errorf("full-range answer = %v, want ≈500", resp.Answers[0])
	}
	if math.Abs(resp.Remaining-1) > 1e-9 {
		t.Fatalf("remaining = %v, want 1 (one charge for the whole batch)", resp.Remaining)
	}

	// A malformed query is rejected before any budget is spent.
	wantError(t, do(t, s, "POST", "/v1/sessions/"+sessID+"/releases/range", RangeRequest{
		DatasetID: dsID, Epsilon: 1, Queries: []RangeQuery{{Lo: 10, Hi: 200}},
	}), http.StatusBadRequest, CodeBadRequest)
	wantError(t, do(t, s, "POST", "/v1/sessions/"+sessID+"/releases/range", RangeRequest{
		DatasetID: dsID, Epsilon: 1,
	}), http.StatusBadRequest, CodeBadRequest)
	sess := decode[SessionResponse](t, do(t, s, "GET", "/v1/sessions/"+sessID, nil))
	if math.Abs(sess.Remaining-1) > 1e-9 {
		t.Fatalf("failed queries charged budget: remaining %v", sess.Remaining)
	}

	// An attr-graph policy cannot serve range queries: structured error.
	attrPol := mustCreatePolicy(t, s, CreatePolicyRequest{Domain: lineDomain, Graph: GraphSpec{Kind: "attr"}})
	attrSess := mustCreateSession(t, s, CreateSessionRequest{PolicyID: attrPol, Budget: 1})
	wantError(t, do(t, s, "POST", "/v1/sessions/"+attrSess+"/releases/range", RangeRequest{
		DatasetID: dsID, Epsilon: 1, Queries: []RangeQuery{{Lo: 0, Hi: 5}},
	}), http.StatusBadRequest, CodeBadRequest)
}

func TestHealthz(t *testing.T) {
	s, _ := newTestServer(t)
	w := do(t, s, "GET", "/v1/healthz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", w.Code)
	}
}

// TestIntegrationFullFlow drives a real HTTP server (httptest) through the
// whole lifecycle for each of the paper's standard specifications: create
// policy, upload data, open a budgeted session, draw histogram and range
// releases until ε is exhausted, and verify the server then refuses with a
// structured budget_exhausted error.
func TestIntegrationFullFlow(t *testing.T) {
	specs := []struct {
		name  string
		graph GraphSpec
		// useCumulative swaps the range draw for a cumulative-histogram
		// draw: range releases require a distance-threshold or full-domain
		// graph, which the attr specification is not.
		useCumulative bool
	}{
		{name: "full", graph: GraphSpec{Kind: "full"}},
		{name: "attr", graph: GraphSpec{Kind: "attr"}, useCumulative: true},
		{name: "l1-theta", graph: GraphSpec{Kind: "l1", Theta: 8}},
	}
	for _, spec := range specs {
		t.Run(spec.name, func(t *testing.T) {
			srv := New(Config{Seed: 7})
			ts := httptest.NewServer(srv)
			defer ts.Close()

			post := func(path string, body, out any) (int, string) {
				t.Helper()
				b, err := json.Marshal(body)
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
				if err != nil {
					t.Fatalf("POST %s: %v", path, err)
				}
				defer resp.Body.Close()
				raw, _ := io.ReadAll(resp.Body)
				if out != nil && resp.StatusCode < 300 {
					if err := json.Unmarshal(raw, out); err != nil {
						t.Fatalf("decode %s: %v (%s)", path, err, raw)
					}
				}
				return resp.StatusCode, string(raw)
			}

			var pol PolicyResponse
			if code, raw := post("/v1/policies", CreatePolicyRequest{Domain: lineDomain, Graph: spec.graph}, &pol); code != http.StatusCreated {
				t.Fatalf("create policy: %d %s", code, raw)
			}
			var ds DatasetResponse
			if code, raw := post("/v1/datasets", CreateDatasetRequest{PolicyID: pol.ID, Rows: lineRows(300, 64)}, &ds); code != http.StatusCreated {
				t.Fatalf("create dataset: %d %s", code, raw)
			}
			var sess SessionResponse
			if code, raw := post("/v1/sessions", CreateSessionRequest{PolicyID: pol.ID, Budget: 1.0}, &sess); code != http.StatusCreated {
				t.Fatalf("create session: %d %s", code, raw)
			}

			base := "/v1/sessions/" + sess.ID + "/releases"

			// Draw releases until the budget runs out: 2 × 0.4 fits in
			// ε=1.0, the third draw of 0.4 must be refused.
			var hist HistogramResponse
			if code, raw := post(base+"/histogram", HistogramRequest{DatasetID: ds.ID, Epsilon: 0.4}, &hist); code != http.StatusOK {
				t.Fatalf("histogram: %d %s", code, raw)
			}
			if len(hist.Counts) != 64 {
				t.Fatalf("histogram length %d", len(hist.Counts))
			}

			if spec.useCumulative {
				var cum CumulativeResponse
				if code, raw := post(base+"/cumulative", CumulativeRequest{DatasetID: ds.ID, Epsilon: 0.4}, &cum); code != http.StatusOK {
					t.Fatalf("cumulative: %d %s", code, raw)
				}
				if len(cum.Inferred) != 64 {
					t.Fatalf("cumulative length %d", len(cum.Inferred))
				}
				if math.Abs(cum.Remaining-0.2) > 1e-9 {
					t.Fatalf("remaining = %v, want 0.2", cum.Remaining)
				}
			} else {
				var rng RangeResponse
				if code, raw := post(base+"/range", RangeRequest{
					DatasetID: ds.ID, Epsilon: 0.4,
					Queries: []RangeQuery{{Lo: 0, Hi: 31}, {Lo: 32, Hi: 63}},
				}, &rng); code != http.StatusOK {
					t.Fatalf("range: %d %s", code, raw)
				}
				if len(rng.Answers) != 2 {
					t.Fatalf("range answers %v", rng.Answers)
				}
				if math.Abs(rng.Remaining-0.2) > 1e-9 {
					t.Fatalf("remaining = %v, want 0.2", rng.Remaining)
				}
			}

			// Third draw exceeds the budget: structured 409.
			code, raw := post(base+"/histogram", HistogramRequest{DatasetID: ds.ID, Epsilon: 0.4}, nil)
			if code != http.StatusConflict {
				t.Fatalf("over-budget draw: %d %s, want 409", code, raw)
			}
			var env errorEnvelope
			if err := json.Unmarshal([]byte(raw), &env); err != nil || env.Error.Code != CodeBudgetExhausted {
				t.Fatalf("over-budget error body %s", raw)
			}

			// The remaining 0.2 is still spendable.
			if code, raw := post(base+"/histogram", HistogramRequest{DatasetID: ds.ID, Epsilon: 0.2}, &hist); code != http.StatusOK {
				t.Fatalf("final draw: %d %s", code, raw)
			}
		})
	}
}

// TestConcurrentReleasesNeverOverspend hammers one session from many
// goroutines through the HTTP surface and asserts the accountant's
// invariants: total spend ≤ budget, and the ledger length equals the
// number of successful releases.
func TestConcurrentReleasesNeverOverspend(t *testing.T) {
	s, _ := newTestServer(t)
	polID := mustCreatePolicy(t, s, CreatePolicyRequest{Domain: lineDomain, Graph: GraphSpec{Kind: "l1", Theta: 4}})
	dsID := mustCreateDataset(t, s, CreateDatasetRequest{PolicyID: polID, Rows: lineRows(50, 64)})

	const (
		budget     = 1.0
		eps        = 0.05 // 20 successes fit exactly
		goroutines = 8
		perG       = 10 // 80 attempts total, at most 20 can succeed
	)
	sessID := mustCreateSession(t, s, CreateSessionRequest{PolicyID: polID, Budget: budget})

	var wg sync.WaitGroup
	var mu sync.Mutex
	okCount, exhausted, other := 0, 0, 0
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				body, _ := json.Marshal(HistogramRequest{DatasetID: dsID, Epsilon: eps})
				req := httptest.NewRequest("POST", "/v1/sessions/"+sessID+"/releases/histogram", bytes.NewReader(body))
				w := httptest.NewRecorder()
				s.ServeHTTP(w, req)
				mu.Lock()
				switch w.Code {
				case http.StatusOK:
					okCount++
				case http.StatusConflict:
					exhausted++
				default:
					other++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if other != 0 {
		t.Fatalf("%d requests failed with unexpected statuses", other)
	}
	if okCount+exhausted != goroutines*perG {
		t.Fatalf("accounted %d responses, want %d", okCount+exhausted, goroutines*perG)
	}
	sess := decode[SessionResponse](t, do(t, s, "GET", "/v1/sessions/"+sessID, nil))
	if sess.Spent > budget+1e-9 {
		t.Fatalf("overspent: %v > %v", sess.Spent, budget)
	}
	if want := float64(okCount) * eps; math.Abs(sess.Spent-want) > 1e-9 {
		t.Fatalf("spent %v, want %v (%d successes × %v)", sess.Spent, want, okCount, eps)
	}
	if len(sess.Releases) != okCount {
		t.Fatalf("ledger has %d entries, want %d", len(sess.Releases), okCount)
	}
	if okCount != 20 {
		t.Fatalf("okCount = %d, want exactly 20 (budget/eps)", okCount)
	}
}

// TestConcurrentSessionCreateAndExpire races session creation, use,
// deletion and expiry sweeps to shake out registry races under -race.
func TestConcurrentSessionCreateAndExpire(t *testing.T) {
	s, clk := newTestServer(t)
	polID := mustCreatePolicy(t, s, CreatePolicyRequest{Domain: lineDomain, Graph: GraphSpec{Kind: "full"}})
	dsID := mustCreateDataset(t, s, CreateDatasetRequest{PolicyID: polID, Rows: lineRows(10, 64)})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				body, _ := json.Marshal(CreateSessionRequest{PolicyID: polID, Budget: 1})
				req := httptest.NewRequest("POST", "/v1/sessions", bytes.NewReader(body))
				w := httptest.NewRecorder()
				s.ServeHTTP(w, req)
				if w.Code != http.StatusCreated {
					t.Errorf("create session: %d", w.Code)
					return
				}
				var resp SessionResponse
				_ = json.Unmarshal(w.Body.Bytes(), &resp)

				rbody, _ := json.Marshal(HistogramRequest{DatasetID: dsID, Epsilon: 0.5})
				rreq := httptest.NewRequest("POST", fmt.Sprintf("/v1/sessions/%s/releases/histogram", resp.ID), bytes.NewReader(rbody))
				rw := httptest.NewRecorder()
				s.ServeHTTP(rw, rreq)
				if rw.Code != http.StatusOK && rw.Code != http.StatusNotFound {
					t.Errorf("release: %d %s", rw.Code, rw.Body.String())
					return
				}
				if i%3 == 0 {
					dreq := httptest.NewRequest("DELETE", "/v1/sessions/"+resp.ID, nil)
					s.ServeHTTP(httptest.NewRecorder(), dreq)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			clk.Advance(5 * time.Minute)
			s.ExpireSessions()
		}
	}()
	wg.Wait()
}
