package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"blowfish"
	"blowfish/internal/codec"
)

// handleDatasetEvents appends a batch of events to the dataset's event log.
// Three encodings share the endpoint: a JSON envelope {"events": [...]},
// NDJSON (Content-Type application/x-ndjson), one event object per line —
// the format high-volume producers pipe without building an envelope in
// memory — and the binary columnar batch frame (Content-Type
// application/x-blowfish-batch, internal/codec), which decodes with no
// per-event allocation for producers that saturate the NDJSON front. The
// decode needs the dataset's attribute count, so the front resolves the
// dataset first (a 404 costs no body parse); the service re-resolves it
// under its own locks when the batch is submitted.
func (s *Server) handleDatasetEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ds, err := s.svc.GetDataset(id)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	maxEvents := s.cfg.MaxEventsPerRequest
	var events []blowfish.StreamEvent
	var wait bool
	switch {
	case isBinaryBatch(r):
		dec := codec.GetDecoder()
		// The decoded events alias the decoder's scratch. The service's
		// ingest path copies them into mutations before returning and the
		// response only carries counters, so releasing the decoder at
		// handler exit is safe.
		defer codec.PutDecoder(dec)
		evs, err := dec.DecodeAll(r.Body, len(ds.Domain), maxEvents)
		if err != nil {
			writeError(w, CodeBadRequest, err.Error())
			return
		}
		events = evs
		wait = waitParam(r)
	case isNDJSON(r):
		sc := getNDJSONScratch()
		defer putNDJSONScratch(sc)
		if err := sc.decode(r.Body, maxEvents); err != nil {
			writeError(w, CodeBadRequest, err.Error())
			return
		}
		events = sc.events
		wait = waitParam(r)
	default:
		var req EventsRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		events = make([]blowfish.StreamEvent, len(req.Events))
		for i, ev := range req.Events {
			events[i] = blowfish.StreamEvent{Op: ev.Op, ID: ev.ID, Row: ev.Row}
		}
		wait = req.Wait
	}
	resp, err := s.svc.IngestEvents(r.Context(), id, events, wait)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, resp)
}

func isNDJSON(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return strings.HasPrefix(ct, "application/x-ndjson") || strings.HasPrefix(ct, "application/ndjson")
}

func isBinaryBatch(r *http.Request) bool {
	return strings.HasPrefix(r.Header.Get("Content-Type"), codec.ContentType)
}

// waitParam reads the ?wait= toggle used by the body formats that have no
// envelope to carry it.
func waitParam(r *http.Request) bool {
	v := r.URL.Query().Get("wait")
	return v == "1" || v == "true"
}

// ndjsonScratch holds the per-request NDJSON decode state a pooled handler
// reuses: the line scanner's buffer, the wire-event slice (each entry's Row
// backing array survives reuse — json.Unmarshal appends into the reset
// slice) and the converted ingest batch. Its events alias the scratch and
// must not be retained past the request.
type ndjsonScratch struct {
	buf    []byte
	rd     bytes.Reader
	wire   []EventWire
	events []blowfish.StreamEvent
}

var ndjsonPool = sync.Pool{New: func() any {
	return &ndjsonScratch{buf: make([]byte, 0, 64<<10)}
}}

func getNDJSONScratch() *ndjsonScratch   { return ndjsonPool.Get().(*ndjsonScratch) }
func putNDJSONScratch(sc *ndjsonScratch) { ndjsonPool.Put(sc) }

// decode parses one event object per non-empty line into the scratch's
// reused buffers, leaving the converted batch in sc.events.
func (sc *ndjsonScratch) decode(body io.Reader, max int) error {
	out := sc.wire[:0]
	s := bufio.NewScanner(body)
	s.Buffer(sc.buf, 1<<20)
	line := 0
	for s.Scan() {
		line++
		b := bytes.TrimSpace(s.Bytes())
		if len(b) == 0 {
			continue
		}
		if len(out) == max {
			sc.wire = out
			return fmt.Errorf("ndjson body exceeds the per-request cap %d", max)
		}
		// Reuse the slot's Row backing across requests; reset the fields a
		// sparse line would otherwise inherit from the previous occupant.
		if len(out) < cap(out) {
			out = out[:len(out)+1]
		} else {
			out = append(out, EventWire{})
		}
		ev := &out[len(out)-1]
		ev.Op, ev.ID, ev.Row = "", 0, ev.Row[:0]
		sc.rd.Reset(b)
		dec := json.NewDecoder(&sc.rd)
		dec.DisallowUnknownFields()
		if err := dec.Decode(ev); err != nil {
			sc.wire = out
			return fmt.Errorf("ndjson line %d: %v", line, err)
		}
	}
	sc.wire = out
	if err := s.Err(); err != nil {
		return fmt.Errorf("ndjson body: %v", err)
	}
	events := sc.events[:0]
	for _, ev := range out {
		events = append(events, blowfish.StreamEvent{Op: ev.Op, ID: ev.ID, Row: ev.Row})
	}
	sc.events = events
	return nil
}

func (s *Server) handleCreateStream(w http.ResponseWriter, r *http.Request) {
	var req CreateStreamRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	resp, err := s.svc.CreateStream(req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleGetStream(w http.ResponseWriter, r *http.Request) {
	resp, err := s.svc.GetStream(r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleListStreams(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.ListStreams())
}

func (s *Server) handleDeleteStream(w http.ResponseWriter, r *http.Request) {
	if err := s.svc.DeleteStream(r.PathValue("id")); err != nil {
		writeServiceError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleCloseEpoch closes the stream's current epoch on demand — the
// deterministic trigger (automatic interval-driven closes are configured
// at stream creation).
func (s *Server) handleCloseEpoch(w http.ResponseWriter, r *http.Request) {
	resp, err := s.svc.CloseEpoch(r.Context(), r.PathValue("id"))
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStreamReleases answers a cursor poll over the stream's published
// releases; see service.Core.StreamReleases for the long-poll and
// exhaustion contract. The front owns only the query-parameter parsing.
func (s *Server) handleStreamReleases(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, CodeBadRequest, "invalid since cursor: "+err.Error())
			return
		}
		since = n
	}
	var wait time.Duration
	if v := q.Get("wait_ms"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, CodeBadRequest, "invalid wait_ms")
			return
		}
		wait = time.Duration(n) * time.Millisecond
	}
	resp, err := s.svc.StreamReleases(r.Context(), r.PathValue("id"), since, wait)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
