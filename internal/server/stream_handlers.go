package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"blowfish"
	"blowfish/internal/codec"
)

// handleDatasetEvents appends a batch of events to the dataset's event log.
// Three encodings share the endpoint: a JSON envelope {"events": [...]},
// NDJSON (Content-Type application/x-ndjson), one event object per line —
// the format high-volume producers pipe without building an envelope in
// memory — and the binary columnar batch frame (Content-Type
// application/x-blowfish-batch, internal/codec), which decodes with no
// per-event allocation for producers that saturate the NDJSON front.
// Events are sequence-numbered and applied by the dataset's single writer;
// the response carries the assigned range and the writer's cursor. The
// ingest queue is bounded: a batch that does not fit whole is rejected
// with the structured queue_full error, 429 and a Retry-After hint, never
// parked on the connection (explicit backpressure).
func (s *Server) handleDatasetEvents(w http.ResponseWriter, r *http.Request) {
	de, ok := s.getDataset(r.PathValue("id"))
	if !ok {
		writeError(w, CodeUnknownDataset, fmt.Sprintf("no dataset %q", r.PathValue("id")))
		return
	}
	var events []blowfish.StreamEvent
	var wait bool
	switch {
	case isBinaryBatch(r):
		dec := codec.GetDecoder()
		// The decoded events alias the decoder's scratch. TrySubmit copies
		// them into mutations before returning and the response only carries
		// counters, so releasing the decoder at handler exit is safe.
		defer codec.PutDecoder(dec)
		evs, err := dec.DecodeAll(r.Body, de.ds.Domain().NumAttrs(), s.cfg.MaxEventsPerRequest)
		if err != nil {
			writeError(w, CodeBadRequest, err.Error())
			return
		}
		events = evs
		wait = waitParam(r)
	case isNDJSON(r):
		sc := getNDJSONScratch()
		defer putNDJSONScratch(sc)
		if err := sc.decode(r.Body, s.cfg.MaxEventsPerRequest); err != nil {
			writeError(w, CodeBadRequest, err.Error())
			return
		}
		events = sc.events
		wait = waitParam(r)
	default:
		var req EventsRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		events = make([]blowfish.StreamEvent, len(req.Events))
		for i, ev := range req.Events {
			events[i] = blowfish.StreamEvent{Op: ev.Op, ID: ev.ID, Row: ev.Row}
		}
		wait = req.Wait
	}
	if len(events) == 0 {
		writeError(w, CodeBadRequest, "events batch is empty")
		return
	}
	if len(events) > s.cfg.MaxEventsPerRequest {
		writeError(w, CodeBadRequest, fmt.Sprintf("%d events exceed the per-request cap %d", len(events), s.cfg.MaxEventsPerRequest))
		return
	}
	ing, err := de.ingestor()
	if err != nil {
		writeError(w, CodeBadRequest, err.Error())
		return
	}
	first, last, err := ing.TrySubmit(events)
	if err != nil {
		var qf *blowfish.StreamQueueFullError
		if errors.As(err, &qf) {
			s.metrics.queueFull.Inc()
			writeQueueFull(w, qf)
			return
		}
		writeError(w, CodeBadRequest, err.Error())
		return
	}
	if wait {
		if err := ing.WaitProcessed(r.Context(), last); err != nil {
			writeError(w, CodeBadRequest, "waiting for apply: "+err.Error())
			return
		}
	}
	stats := ing.Stats()
	writeJSON(w, http.StatusAccepted, EventsResponse{
		Accepted:     len(events),
		FirstSeq:     first,
		LastSeq:      last,
		ProcessedSeq: stats.Processed,
		Rejected:     stats.Rejected,
		LastError:    stats.LastError,
	})
}

func isNDJSON(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return strings.HasPrefix(ct, "application/x-ndjson") || strings.HasPrefix(ct, "application/ndjson")
}

func isBinaryBatch(r *http.Request) bool {
	return strings.HasPrefix(r.Header.Get("Content-Type"), codec.ContentType)
}

// waitParam reads the ?wait= toggle used by the body formats that have no
// envelope to carry it.
func waitParam(r *http.Request) bool {
	v := r.URL.Query().Get("wait")
	return v == "1" || v == "true"
}

// ndjsonScratch holds the per-request NDJSON decode state a pooled handler
// reuses: the line scanner's buffer, the wire-event slice (each entry's Row
// backing array survives reuse — json.Unmarshal appends into the reset
// slice) and the converted ingest batch. Its events alias the scratch and
// must not be retained past the request.
type ndjsonScratch struct {
	buf    []byte
	rd     bytes.Reader
	wire   []EventWire
	events []blowfish.StreamEvent
}

var ndjsonPool = sync.Pool{New: func() any {
	return &ndjsonScratch{buf: make([]byte, 0, 64<<10)}
}}

func getNDJSONScratch() *ndjsonScratch   { return ndjsonPool.Get().(*ndjsonScratch) }
func putNDJSONScratch(sc *ndjsonScratch) { ndjsonPool.Put(sc) }

// decode parses one event object per non-empty line into the scratch's
// reused buffers, leaving the converted batch in sc.events.
func (sc *ndjsonScratch) decode(body io.Reader, max int) error {
	out := sc.wire[:0]
	s := bufio.NewScanner(body)
	s.Buffer(sc.buf, 1<<20)
	line := 0
	for s.Scan() {
		line++
		b := bytes.TrimSpace(s.Bytes())
		if len(b) == 0 {
			continue
		}
		if len(out) == max {
			sc.wire = out
			return fmt.Errorf("ndjson body exceeds the per-request cap %d", max)
		}
		// Reuse the slot's Row backing across requests; reset the fields a
		// sparse line would otherwise inherit from the previous occupant.
		if len(out) < cap(out) {
			out = out[:len(out)+1]
		} else {
			out = append(out, EventWire{})
		}
		ev := &out[len(out)-1]
		ev.Op, ev.ID, ev.Row = "", 0, ev.Row[:0]
		sc.rd.Reset(b)
		dec := json.NewDecoder(&sc.rd)
		dec.DisallowUnknownFields()
		if err := dec.Decode(ev); err != nil {
			sc.wire = out
			return fmt.Errorf("ndjson line %d: %v", line, err)
		}
	}
	sc.wire = out
	if err := s.Err(); err != nil {
		return fmt.Errorf("ndjson body: %v", err)
	}
	events := sc.events[:0]
	for _, ev := range out {
		events = append(events, blowfish.StreamEvent{Op: ev.Op, ID: ev.ID, Row: ev.Row})
	}
	sc.events = events
	return nil
}

// handleCreateStream binds a dataset and a policy into a continual-release
// stream: a dedicated budgeted session backs the epsilon schedule, the
// dataset's table is indexed through the policy's compiled plan, and (when
// an interval is configured) an epoch ticker starts.
func (s *Server) handleCreateStream(w http.ResponseWriter, r *http.Request) {
	if !s.checkOpen(w) {
		return
	}
	var req CreateStreamRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	pe, ok := s.getPolicy(req.PolicyID)
	if !ok {
		writeError(w, CodeUnknownPolicy, fmt.Sprintf("no policy %q", req.PolicyID))
		return
	}
	de, ok := s.getDataset(req.DatasetID)
	if !ok {
		writeError(w, CodeUnknownDataset, fmt.Sprintf("no dataset %q", req.DatasetID))
		return
	}
	// Same seeding contract as sessions: explicit seeds pin one noise shard
	// so the stream replays identically on any host.
	seed, shards := s.resolveSeed(req.Seed)
	e, err := s.buildStreamEntry(pe, de, req, seed, shards)
	if err != nil {
		writeLibError(w, err)
		return
	}
	st := e.st
	// rollback undoes the side effects New applied to the shared table when
	// the registration below is refused.
	rollback := func() {
		st.Stop()
		st.Unbind()
	}
	s.mu.Lock()
	// Re-check the referenced resources under the write lock that inserts
	// the stream, so a racing policy/dataset deletion cannot strand it.
	if s.closed {
		s.mu.Unlock()
		rollback()
		writeError(w, CodeBadRequest, "server is shutting down")
		return
	}
	if _, still := s.policies[pe.id]; !still {
		s.mu.Unlock()
		rollback()
		writeError(w, CodeUnknownPolicy, fmt.Sprintf("no policy %q", req.PolicyID))
		return
	}
	if _, still := s.datasets[de.id]; !still {
		s.mu.Unlock()
		rollback()
		writeError(w, CodeUnknownDataset, fmt.Sprintf("no dataset %q", req.DatasetID))
		return
	}
	// Windowed (tumbling/sliding) streams mutate shared table state at
	// each close — dataset resets, epoch tags — so a dataset carrying one
	// admits no other stream, in either direction. Cumulative streams
	// coexist freely.
	newWin := st.Config().Window
	for _, other := range s.streams {
		if other.datasetID != de.id {
			continue
		}
		otherWin := other.st.Config().Window
		if newWin != blowfish.WindowCumulative || otherWin != blowfish.WindowCumulative {
			s.mu.Unlock()
			rollback()
			writeError(w, CodeDatasetInUse, fmt.Sprintf(
				"dataset %q already has stream %q (window %q); windowed streams need the dataset to themselves",
				de.id, other.id, otherWin))
			return
		}
	}
	e.id = s.newID(3, "stream")
	if err := s.journal(recStreamPut, walStreamPut{
		ID: e.id, Req: req, Seed: seed, Shards: shards, NextSeed: s.nextSeed.Load(),
	}); err != nil {
		s.mu.Unlock()
		rollback()
		writeError(w, CodeDurability, err.Error())
		return
	}
	if s.persist != nil {
		// Install the epoch journal before the stream is reachable (and
		// before Start), so no close can ever precede its stream's own
		// creation record in the log.
		st.SetJournal(s.epochJournal(e.id))
	}
	s.streams[e.id] = e
	s.mu.Unlock()
	st.Start()
	writeJSON(w, http.StatusCreated, streamResponse(e))
}

func streamResponse(e *streamEntry) StreamResponse {
	acct := e.sess.Accountant()
	status := e.st.Status()
	cfg := e.st.Config()
	kinds := make([]string, len(cfg.Kinds))
	for i, k := range cfg.Kinds {
		kinds[i] = string(k)
	}
	return StreamResponse{
		ID:          e.id,
		PolicyID:    e.policyID,
		DatasetID:   e.datasetID,
		Budget:      acct.Budget(),
		Spent:       acct.Spent(),
		Remaining:   acct.Remaining(),
		Window:      string(cfg.Window),
		Kinds:       kinds,
		Epoch:       status.Epoch,
		NextEpsilon: status.NextEpsilon,
		Exhausted:   status.Exhausted,
		FirstSeq:    status.FirstSeq,
		LastSeq:     status.LastSeq,
		Rows:        status.N,
		Events:      status.Events,
	}
}

// streamFor resolves the {id} path segment, writing the structured
// unknown-stream error on miss.
func (s *Server) streamFor(w http.ResponseWriter, r *http.Request) (*streamEntry, bool) {
	e, ok := s.getStream(r.PathValue("id"))
	if !ok {
		writeError(w, CodeUnknownStream, fmt.Sprintf("no stream %q", r.PathValue("id")))
		return nil, false
	}
	return e, true
}

func (s *Server) handleGetStream(w http.ResponseWriter, r *http.Request) {
	e, ok := s.streamFor(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, streamResponse(e))
}

func (s *Server) handleDeleteStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	e, ok := s.streams[id]
	if ok {
		if err := s.journalDelete(nsStream, id); err != nil {
			s.mu.Unlock()
			writeError(w, CodeDurability, err.Error())
			return
		}
	}
	delete(s.streams, id)
	s.mu.Unlock()
	if !ok {
		writeError(w, CodeUnknownStream, fmt.Sprintf("no stream %q", id))
		return
	}
	e.st.Stop()
	// Detach the stream's index so ingestion on the surviving dataset stops
	// maintaining count vectors nobody will read.
	e.st.Unbind()
	w.WriteHeader(http.StatusNoContent)
}

// handleCloseEpoch closes the stream's current epoch on demand — the
// deterministic trigger (automatic interval-driven closes are configured at
// stream creation). The dataset's event queue is flushed first so the epoch
// covers everything submitted before the call.
func (s *Server) handleCloseEpoch(w http.ResponseWriter, r *http.Request) {
	e, ok := s.streamFor(w, r)
	if !ok {
		return
	}
	if ing := e.de.startedIngestor(); ing != nil {
		if err := ing.Flush(r.Context()); err != nil {
			writeError(w, CodeBadRequest, "flushing event queue: "+err.Error())
			return
		}
	}
	rel, err := e.st.CloseEpoch()
	if err != nil {
		writeLibError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, releaseWire(rel))
}

func releaseWire(rel *blowfish.EpochRelease) EpochReleaseWire {
	return EpochReleaseWire{
		Seq:                rel.Seq,
		Epoch:              rel.Epoch,
		Events:             rel.Events,
		Rows:               rel.N,
		Epsilon:            rel.Epsilon,
		Remaining:          rel.Remaining,
		Histogram:          rel.Histogram,
		CumulativeRaw:      rel.CumulativeRaw,
		CumulativeInferred: rel.CumulativeInferred,
		RangeAnswers:       rel.RangeAnswers,
	}
}

// handleStreamReleases answers a cursor poll over the stream's published
// releases. With wait_ms > 0 and nothing past the cursor, the request long-
// polls until a release arrives or the wait elapses (200 with an empty
// list). A poll — waiting or not — that lands past the last release of an
// exhausted stream gets the structured budget_exhausted error: nothing
// will ever arrive, so pollers know to stop.
func (s *Server) handleStreamReleases(w http.ResponseWriter, r *http.Request) {
	e, ok := s.streamFor(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, CodeBadRequest, "invalid since cursor: "+err.Error())
			return
		}
		since = n
	}
	var wait time.Duration
	if v := q.Get("wait_ms"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, CodeBadRequest, "invalid wait_ms")
			return
		}
		wait = time.Duration(n) * time.Millisecond
		if wait > s.cfg.MaxLongPollWait {
			wait = s.cfg.MaxLongPollWait
		}
	}
	rels := e.st.Releases(since)
	if len(rels) == 0 && wait > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), wait)
		waited, err := e.st.WaitReleases(ctx, since)
		cancel()
		switch {
		case err == nil:
			rels = waited
		case errors.Is(err, context.DeadlineExceeded):
			// Wait elapsed: answer the empty list, the poller retries.
		case errors.Is(err, blowfish.ErrStreamStopped):
			// The stream (or server) is shutting down: a clean empty
			// response, not an error — the poller's next request resolves
			// the stream's fate.
		case errors.Is(err, blowfish.ErrBudgetExceeded):
			writeLibError(w, err)
			return
		default:
			writeError(w, CodeBadRequest, err.Error())
			return
		}
	}
	if len(rels) == 0 && e.st.Status().Exhausted {
		// Past the last release of an exhausted stream nothing will ever
		// arrive — the terminal budget_exhausted signal must reach plain
		// polls too, not only the long-poll branch above, or a non-waiting
		// poller loops on empty 200s forever.
		writeLibError(w, blowfish.ErrBudgetExceeded)
		return
	}
	resp := StreamReleasesResponse{Releases: make([]EpochReleaseWire, len(rels)), NextSince: since}
	for i, rel := range rels {
		resp.Releases[i] = releaseWire(rel)
		resp.NextSince = rel.Seq
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleListStreams(w http.ResponseWriter, r *http.Request) {
	entries := snapshotSorted(s, s.streams, func(e *streamEntry) string { return e.id })
	resp := ListStreamsResponse{Streams: make([]StreamResponse, len(entries))}
	for i, e := range entries {
		resp.Streams[i] = streamResponse(e)
	}
	writeJSON(w, http.StatusOK, resp)
}
