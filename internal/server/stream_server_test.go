package server

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"blowfish"
	"blowfish/internal/leak"
)

// streamFixtureIDs registers an l1 line policy and an empty dataset over
// its domain, returning both ids.
func streamFixtureIDs(t *testing.T, s *Server) (polID, dsID string) {
	t.Helper()
	polID = mustCreatePolicy(t, s, CreatePolicyRequest{
		Domain: lineDomain,
		Graph:  GraphSpec{Kind: "l1", Theta: 4},
	})
	dsID = mustCreateDataset(t, s, CreateDatasetRequest{PolicyID: polID})
	return polID, dsID
}

// mustCreateStream opens a stream and returns its id.
func mustCreateStream(t *testing.T, s *Server, req CreateStreamRequest) string {
	t.Helper()
	w := do(t, s, "POST", "/v1/streams", req)
	if w.Code != http.StatusCreated {
		t.Fatalf("create stream: status %d body %s", w.Code, w.Body.String())
	}
	return decode[StreamResponse](t, w).ID
}

// postEvents submits an events batch with wait=true and asserts acceptance.
func postEvents(t *testing.T, s *Server, dsID string, events []EventWire) EventsResponse {
	t.Helper()
	w := do(t, s, "POST", "/v1/datasets/"+dsID+"/events", EventsRequest{Events: events, Wait: true})
	if w.Code != http.StatusAccepted {
		t.Fatalf("post events: status %d body %s", w.Code, w.Body.String())
	}
	return decode[EventsResponse](t, w)
}

func appendEvents(vals ...int) []EventWire {
	evs := make([]EventWire, len(vals))
	for i, v := range vals {
		evs[i] = EventWire{Op: "append", Row: []int{v}}
	}
	return evs
}

// TestStreamLifecycle walks the full flow: create stream → ingest events →
// close epochs → poll releases with a cursor → exhaust the budget.
func TestStreamLifecycle(t *testing.T) {
	s, _ := newTestServer(t)
	defer s.Close()
	polID, dsID := streamFixtureIDs(t, s)
	seed := int64(7)
	stID := mustCreateStream(t, s, CreateStreamRequest{
		PolicyID:  polID,
		DatasetID: dsID,
		Budget:    0.3,
		Seed:      &seed,
		Epoch:     EpochSpec{Epsilon: 0.1},
	})

	resp := postEvents(t, s, dsID, appendEvents(1, 2, 2, 3))
	if resp.Accepted != 4 || resp.FirstSeq != 1 || resp.LastSeq != 4 || resp.ProcessedSeq != 4 {
		t.Fatalf("events response = %+v", resp)
	}

	// First epoch close releases a noisy histogram over the 4 rows.
	w := do(t, s, "POST", "/v1/streams/"+stID+"/epochs", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("close epoch: status %d body %s", w.Code, w.Body.String())
	}
	rel := decode[EpochReleaseWire](t, w)
	if rel.Seq != 1 || rel.Epoch != 0 || rel.Rows != 4 || len(rel.Histogram) != 64 {
		t.Fatalf("release = %+v", rel)
	}
	if math.Abs(rel.Remaining-0.2) > 1e-9 {
		t.Fatalf("remaining = %v, want 0.2", rel.Remaining)
	}

	// More events, second close, then poll with the cursor: only the new
	// release comes back.
	postEvents(t, s, dsID, appendEvents(10, 11))
	w = do(t, s, "POST", "/v1/streams/"+stID+"/epochs", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("close epoch 2: status %d body %s", w.Code, w.Body.String())
	}
	w = do(t, s, "GET", "/v1/streams/"+stID+"/releases?since=1", nil)
	polled := decode[StreamReleasesResponse](t, w)
	if len(polled.Releases) != 1 || polled.Releases[0].Seq != 2 || polled.NextSince != 2 {
		t.Fatalf("poll = %+v", polled)
	}
	if polled.Releases[0].Rows != 6 {
		t.Fatalf("epoch 1 rows = %d, want 6 (cumulative window)", polled.Releases[0].Rows)
	}

	// Third close exhausts; fourth refuses with the structured error.
	w = do(t, s, "POST", "/v1/streams/"+stID+"/epochs", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("close epoch 3: status %d body %s", w.Code, w.Body.String())
	}
	w = do(t, s, "POST", "/v1/streams/"+stID+"/epochs", nil)
	wantError(t, w, http.StatusConflict, CodeBudgetExhausted)

	st := decode[StreamResponse](t, do(t, s, "GET", "/v1/streams/"+stID, nil))
	if !st.Exhausted || st.Epoch != 3 || st.Spent < 0.3-1e-9 {
		t.Fatalf("stream status = %+v, want exhausted after 3 epochs", st)
	}
	// A poll past the last release on an exhausted stream tells the poller
	// to stop (budget_exhausted) instead of hanging.
	w = do(t, s, "GET", "/v1/streams/"+stID+"/releases?since=3&wait_ms=50", nil)
	wantError(t, w, http.StatusConflict, CodeBudgetExhausted)
}

// TestStreamReproducible pins the acceptance criterion end to end: two
// servers replaying the same seeded stream produce bit-for-bit identical
// epoch releases.
func TestStreamReproducible(t *testing.T) {
	run := func() []float64 {
		s, _ := newTestServer(t)
		defer s.Close()
		polID, dsID := streamFixtureIDs(t, s)
		seed := int64(99)
		stID := mustCreateStream(t, s, CreateStreamRequest{
			PolicyID:  polID,
			DatasetID: dsID,
			Budget:    1,
			Seed:      &seed,
			Epoch:     EpochSpec{Epsilon: 0.5},
		})
		postEvents(t, s, dsID, appendEvents(5, 9, 9, 30, 31))
		w := do(t, s, "POST", "/v1/streams/"+stID+"/epochs", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("close epoch: status %d body %s", w.Code, w.Body.String())
		}
		return decode[EpochReleaseWire](t, w).Histogram
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hist[%d] differs across replays: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestStreamNDJSONEvents submits the line-delimited encoding.
func TestStreamNDJSONEvents(t *testing.T) {
	s, _ := newTestServer(t)
	defer s.Close()
	_, dsID := streamFixtureIDs(t, s)
	body := `{"op":"append","row":[1]}
{"op":"append","row":[2]}

{"op":"upsert","id":0,"row":[3]}
`
	req := httptest.NewRequest("POST", "/v1/datasets/"+dsID+"/events?wait=1", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/x-ndjson")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("ndjson post: status %d body %s", w.Code, w.Body.String())
	}
	resp := decode[EventsResponse](t, w)
	if resp.Accepted != 3 || resp.ProcessedSeq != 3 {
		t.Fatalf("ndjson response = %+v", resp)
	}
	ds := decode[DatasetResponse](t, do(t, s, "GET", "/v1/datasets/"+dsID, nil))
	if ds.Rows != 2 {
		t.Fatalf("rows = %d, want 2", ds.Rows)
	}
	// Malformed line surfaces as a structured bad request.
	req = httptest.NewRequest("POST", "/v1/datasets/"+dsID+"/events", strings.NewReader(`{"op":`))
	req.Header.Set("Content-Type", "application/x-ndjson")
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	wantError(t, w, http.StatusBadRequest, CodeBadRequest)
}

// TestStreamLongPoll asserts a waiting releases poll wakes on epoch close.
func TestStreamLongPoll(t *testing.T) {
	s, _ := newTestServer(t)
	defer s.Close()
	polID, dsID := streamFixtureIDs(t, s)
	stID := mustCreateStream(t, s, CreateStreamRequest{
		PolicyID: polID, DatasetID: dsID, Budget: 1, Epoch: EpochSpec{Epsilon: 0.1},
	})
	postEvents(t, s, dsID, appendEvents(1))
	type result struct {
		w *httptest.ResponseRecorder
	}
	got := make(chan result, 1)
	go func() {
		got <- result{do(t, s, "GET", "/v1/streams/"+stID+"/releases?wait_ms=10000", nil)}
	}()
	time.Sleep(20 * time.Millisecond) // let the poller block
	if w := do(t, s, "POST", "/v1/streams/"+stID+"/epochs", nil); w.Code != http.StatusOK {
		t.Fatalf("close epoch: status %d body %s", w.Code, w.Body.String())
	}
	select {
	case r := <-got:
		if r.w.Code != http.StatusOK {
			t.Fatalf("long-poll: status %d body %s", r.w.Code, r.w.Body.String())
		}
		resp := decode[StreamReleasesResponse](t, r.w)
		if len(resp.Releases) != 1 || resp.NextSince != 1 {
			t.Fatalf("long-poll = %+v", resp)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll never woke")
	}
	// An elapsed wait returns an empty list, not an error.
	w := do(t, s, "GET", "/v1/streams/"+stID+"/releases?since=1&wait_ms=30", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("elapsed wait: status %d body %s", w.Code, w.Body.String())
	}
	if resp := decode[StreamReleasesResponse](t, w); len(resp.Releases) != 0 || resp.NextSince != 1 {
		t.Fatalf("elapsed wait = %+v", resp)
	}
	// A hostile cursor (uint64 max) is an empty answer, not a panic.
	w = do(t, s, "GET", "/v1/streams/"+stID+"/releases?since=18446744073709551615", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("huge cursor: status %d body %s", w.Code, w.Body.String())
	}
	if resp := decode[StreamReleasesResponse](t, w); len(resp.Releases) != 0 {
		t.Fatalf("huge cursor = %+v", resp)
	}
}

// TestStreamAutomaticEpochs exercises the interval-driven scheduler through
// the server: releases appear without manual closes, and DELETE stops it.
func TestStreamAutomaticEpochs(t *testing.T) {
	s, _ := newTestServer(t)
	defer s.Close()
	polID, dsID := streamFixtureIDs(t, s)
	stID := mustCreateStream(t, s, CreateStreamRequest{
		PolicyID: polID, DatasetID: dsID, Budget: 1,
		Epoch: EpochSpec{Epsilon: 0.01, IntervalMS: 1},
	})
	postEvents(t, s, dsID, appendEvents(1, 2))
	w := do(t, s, "GET", "/v1/streams/"+stID+"/releases?wait_ms=10000", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("poll: status %d body %s", w.Code, w.Body.String())
	}
	if resp := decode[StreamReleasesResponse](t, w); len(resp.Releases) == 0 {
		t.Fatal("no automatic release arrived")
	}
	if w := do(t, s, "DELETE", "/v1/streams/"+stID, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete stream: status %d", w.Code)
	}
	if s.StreamCount() != 0 {
		t.Fatalf("stream count = %d after delete", s.StreamCount())
	}
}

// TestDeletionGuards pins referential integrity: datasets and policies with
// live streams refuse deletion until the stream goes.
func TestDeletionGuards(t *testing.T) {
	s, _ := newTestServer(t)
	defer s.Close()
	polID, dsID := streamFixtureIDs(t, s)
	stID := mustCreateStream(t, s, CreateStreamRequest{
		PolicyID: polID, DatasetID: dsID, Budget: 1, Epoch: EpochSpec{Epsilon: 0.1},
	})
	wantError(t, do(t, s, "DELETE", "/v1/datasets/"+dsID, nil), http.StatusConflict, CodeDatasetInUse)
	wantError(t, do(t, s, "DELETE", "/v1/policies/"+polID, nil), http.StatusConflict, CodePolicyInUse)
	if w := do(t, s, "DELETE", "/v1/streams/"+stID, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete stream: status %d", w.Code)
	}
	if w := do(t, s, "DELETE", "/v1/datasets/"+dsID, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete dataset after stream: status %d body %s", w.Code, w.Body.String())
	}
	if w := do(t, s, "DELETE", "/v1/policies/"+polID, nil); w.Code != http.StatusNoContent {
		t.Fatalf("delete policy after stream: status %d body %s", w.Code, w.Body.String())
	}
}

// TestWindowedStreamExclusivity pins the sharing rule: cumulative streams
// coexist on one dataset, but a tumbling/sliding stream needs the dataset
// to itself (its closes reset data and rewrite epoch tags other streams
// would see).
func TestWindowedStreamExclusivity(t *testing.T) {
	s, _ := newTestServer(t)
	defer s.Close()
	polID, dsID := streamFixtureIDs(t, s)
	mustCreateStream(t, s, CreateStreamRequest{
		PolicyID: polID, DatasetID: dsID, Budget: 1, Epoch: EpochSpec{Epsilon: 0.1},
	})
	// A second cumulative stream coexists.
	mustCreateStream(t, s, CreateStreamRequest{
		PolicyID: polID, DatasetID: dsID, Budget: 1, Epoch: EpochSpec{Epsilon: 0.1},
	})
	// A windowed stream on the shared dataset is refused...
	wantError(t, do(t, s, "POST", "/v1/streams", CreateStreamRequest{
		PolicyID: polID, DatasetID: dsID, Budget: 1, Epoch: EpochSpec{Epsilon: 0.1},
		Window: WindowSpec{Kind: "tumbling"},
	}), http.StatusConflict, CodeDatasetInUse)
	// ...and a dataset carrying a windowed stream admits no second stream.
	ds2 := mustCreateDataset(t, s, CreateDatasetRequest{PolicyID: polID})
	mustCreateStream(t, s, CreateStreamRequest{
		PolicyID: polID, DatasetID: ds2, Budget: 1, Epoch: EpochSpec{Epsilon: 0.1},
		Window: WindowSpec{Kind: "sliding", Epochs: 2},
	})
	wantError(t, do(t, s, "POST", "/v1/streams", CreateStreamRequest{
		PolicyID: polID, DatasetID: ds2, Budget: 1, Epoch: EpochSpec{Epsilon: 0.1},
	}), http.StatusConflict, CodeDatasetInUse)
}

// TestListEndpoints pins the enumeration surface: ids come back in numeric
// order with live row counts and budgets.
func TestListEndpoints(t *testing.T) {
	s, _ := newTestServer(t)
	defer s.Close()
	var polIDs, dsIDs []string
	for i := 0; i < 3; i++ {
		polIDs = append(polIDs, mustCreatePolicy(t, s, CreatePolicyRequest{
			Domain: lineDomain, Graph: GraphSpec{Kind: "l1", Theta: float64(i + 1)},
		}))
		dsIDs = append(dsIDs, mustCreateDataset(t, s, CreateDatasetRequest{
			Domain: lineDomain, Rows: lineRows(i+1, 64),
		}))
	}
	sessID := mustCreateSession(t, s, CreateSessionRequest{PolicyID: polIDs[1], Budget: 2})
	stID := mustCreateStream(t, s, CreateStreamRequest{
		PolicyID: polIDs[0], DatasetID: dsIDs[0], Budget: 1, Epoch: EpochSpec{Epsilon: 0.1},
	})

	pols := decode[ListPoliciesResponse](t, do(t, s, "GET", "/v1/policies", nil))
	if len(pols.Policies) != 3 {
		t.Fatalf("policies = %d, want 3", len(pols.Policies))
	}
	for i, p := range pols.Policies {
		if p.ID != polIDs[i] {
			t.Fatalf("policy order: got %q at %d, want %q", p.ID, i, polIDs[i])
		}
	}
	dss := decode[ListDatasetsResponse](t, do(t, s, "GET", "/v1/datasets", nil))
	if len(dss.Datasets) != 3 {
		t.Fatalf("datasets = %d, want 3", len(dss.Datasets))
	}
	for i, d := range dss.Datasets {
		if d.ID != dsIDs[i] || d.Rows != i+1 {
			t.Fatalf("dataset %d = %+v", i, d)
		}
	}
	sessions := decode[ListSessionsResponse](t, do(t, s, "GET", "/v1/sessions", nil))
	if len(sessions.Sessions) != 1 || sessions.Sessions[0].ID != sessID || sessions.Sessions[0].Budget != 2 {
		t.Fatalf("sessions = %+v", sessions)
	}
	streams := decode[ListStreamsResponse](t, do(t, s, "GET", "/v1/streams", nil))
	if len(streams.Streams) != 1 || streams.Streams[0].ID != stID {
		t.Fatalf("streams = %+v", streams)
	}
}

// TestStreamBadRequests pins the structured errors of the new surface.
func TestStreamBadRequests(t *testing.T) {
	s, _ := newTestServer(t)
	defer s.Close()
	polID, dsID := streamFixtureIDs(t, s)
	wantError(t, do(t, s, "POST", "/v1/streams", CreateStreamRequest{
		PolicyID: "pol-404", DatasetID: dsID, Budget: 1, Epoch: EpochSpec{Epsilon: 0.1},
	}), http.StatusNotFound, CodeUnknownPolicy)
	wantError(t, do(t, s, "POST", "/v1/streams", CreateStreamRequest{
		PolicyID: polID, DatasetID: "ds-404", Budget: 1, Epoch: EpochSpec{Epsilon: 0.1},
	}), http.StatusNotFound, CodeUnknownDataset)
	wantError(t, do(t, s, "POST", "/v1/streams", CreateStreamRequest{
		PolicyID: polID, DatasetID: dsID, Budget: 1, // no epsilon schedule
	}), http.StatusBadRequest, CodeBadRequest)
	// Foreign-domain dataset → structured domain mismatch.
	otherDS := mustCreateDataset(t, s, CreateDatasetRequest{Domain: []AttrSpec{{Name: "w", Size: 9}}})
	wantError(t, do(t, s, "POST", "/v1/streams", CreateStreamRequest{
		PolicyID: polID, DatasetID: otherDS, Budget: 1, Epoch: EpochSpec{Epsilon: 0.1},
	}), http.StatusUnprocessableEntity, CodeDomainMismatch)
	wantError(t, do(t, s, "GET", "/v1/streams/stream-404", nil), http.StatusNotFound, CodeUnknownStream)
	wantError(t, do(t, s, "POST", "/v1/streams/stream-404/epochs", nil), http.StatusNotFound, CodeUnknownStream)
	wantError(t, do(t, s, "POST", "/v1/datasets/"+dsID+"/events", EventsRequest{}), http.StatusBadRequest, CodeBadRequest)
	wantError(t, do(t, s, "POST", "/v1/datasets/"+dsID+"/events", EventsRequest{
		Events: []EventWire{{Op: "append", Row: []int{999}}},
	}), http.StatusBadRequest, CodeBadRequest)
}

// TestServerClose pins shutdown semantics: Close is idempotent, stops the
// stream schedulers and ingest writers, flushes queued events, and refuses
// resource creation and further ingestion afterwards.
func TestServerClose(t *testing.T) {
	s, _ := newTestServer(t)
	polID, dsID := streamFixtureIDs(t, s)
	mustCreateStream(t, s, CreateStreamRequest{
		PolicyID: polID, DatasetID: dsID, Budget: 1,
		Epoch: EpochSpec{Epsilon: 0.01, IntervalMS: 1},
	})
	// Submit without waiting, then Close: the queue must flush.
	w := do(t, s, "POST", "/v1/datasets/"+dsID+"/events", EventsRequest{Events: appendEvents(1, 2, 3)})
	if w.Code != http.StatusAccepted {
		t.Fatalf("events: status %d body %s", w.Code, w.Body.String())
	}
	s.Close()
	s.Close() // idempotent
	ds := decode[DatasetResponse](t, do(t, s, "GET", "/v1/datasets/"+dsID, nil))
	if ds.Rows != 3 {
		t.Fatalf("rows after Close = %d, want 3 (queue not flushed)", ds.Rows)
	}
	wantError(t, do(t, s, "POST", "/v1/datasets/"+dsID+"/events", EventsRequest{Events: appendEvents(4)}),
		http.StatusBadRequest, CodeBadRequest)
	wantError(t, do(t, s, "POST", "/v1/streams", CreateStreamRequest{
		PolicyID: polID, DatasetID: dsID, Budget: 1, Epoch: EpochSpec{Epsilon: 0.1},
	}), http.StatusBadRequest, CodeBadRequest)
	// A dataset that never ingested refuses a post-Close first event (no
	// writer goroutine may start after shutdown).
	// (Datasets can no longer be created post-Close, so reuse the same one.)
	reads := decode[ListStreamsResponse](t, do(t, s, "GET", "/v1/streams", nil))
	if len(reads.Streams) != 1 {
		t.Fatalf("streams = %d, want 1 (reads still served)", len(reads.Streams))
	}
}

// TestServerStreamHammer interleaves, under -race, everything the streaming
// server can do to one dataset at once: concurrent event batches, manual
// epoch closes, session releases over the same dataset, list/status polls,
// and direct Dataset mutation through the table's escape hatch — the
// generation-counter rebuild path exercised end to end through the server.
func TestServerStreamHammer(t *testing.T) {
	leak.Check(t)
	s, _ := newTestServer(t)
	defer s.Close()
	polID, dsID := streamFixtureIDs(t, s)
	stID := mustCreateStream(t, s, CreateStreamRequest{
		PolicyID: polID, DatasetID: dsID, Budget: 1e9,
		Epoch: EpochSpec{Epsilon: 0.01},
		Kinds: []string{"histogram", "cumulative"},
	})
	sessID := mustCreateSession(t, s, CreateSessionRequest{PolicyID: polID, Budget: 1e9})

	tbl := s.Core().DatasetTable(dsID)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := func(format string, args ...any) {
		select {
		case <-stop:
		default:
			t.Errorf(format, args...)
		}
	}
	for w := 0; w < 3; w++ { // event producers
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec := do(t, s, "POST", "/v1/datasets/"+dsID+"/events", EventsRequest{
					Events: appendEvents((i*3+w)%64, (i*7)%64),
				})
				if rec.Code == http.StatusTooManyRequests {
					// Explicit backpressure: queue_full is a legitimate
					// transient answer under this load; honor Retry-After
					// in spirit (back off briefly) and retry.
					if rec.Header().Get("Retry-After") == "" {
						fail("queue_full without Retry-After: body %s", rec.Body.String())
						return
					}
					time.Sleep(time.Millisecond)
					continue
				}
				if rec.Code != http.StatusAccepted {
					fail("events: status %d body %s", rec.Code, rec.Body.String())
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // session releases racing ingestion
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := do(t, s, "POST", "/v1/sessions/"+sessID+"/releases/histogram",
				HistogramRequest{DatasetID: dsID, Epsilon: 0.01})
			if rec.Code != http.StatusOK {
				fail("session release: status %d body %s", rec.Code, rec.Body.String())
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // direct Dataset mutation: the generation rebuild path
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			err := tbl.Mutate(func(ds *blowfish.Dataset) error {
				return ds.Add(blowfish.Point(i % 64))
			})
			if err != nil {
				fail("direct mutate: %v", err)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Add(1)
	go func() { // pollers
		defer wg.Done()
		var since uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := do(t, s, "GET", fmt.Sprintf("/v1/streams/%s/releases?since=%d", stID, since), nil)
			if rec.Code != http.StatusOK {
				fail("poll: status %d body %s", rec.Code, rec.Body.String())
				return
			}
			since = decode[StreamReleasesResponse](t, rec).NextSince
			do(t, s, "GET", "/v1/datasets", nil)
			do(t, s, "GET", "/v1/streams", nil)
			time.Sleep(200 * time.Microsecond)
		}
	}()
	for i := 0; i < 25; i++ {
		rec := do(t, s, "POST", "/v1/streams/"+stID+"/epochs", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("epoch close %d: status %d body %s", i, rec.Code, rec.Body.String())
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// After the storm, drain the event queue and compare the maintained
	// index against a from-scratch rebuild: a near-noiseless release
	// (enormous ε) through the server must match the true histogram, which
	// catches any count the interleaving tore.
	ing := s.Core().StartedIngestor(dsID)
	if ing == nil {
		t.Fatal("ingestor never started")
	}
	if err := ing.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	tbl.RLock()
	want, err := tbl.Dataset().Histogram()
	tbl.RUnlock()
	if err != nil {
		t.Fatal(err)
	}
	checkID := mustCreateSession(t, s, CreateSessionRequest{PolicyID: polID, Budget: 1e12})
	rec := do(t, s, "POST", "/v1/sessions/"+checkID+"/releases/histogram",
		HistogramRequest{DatasetID: dsID, Epsilon: 1e9})
	if rec.Code != http.StatusOK {
		t.Fatalf("check release: status %d body %s", rec.Code, rec.Body.String())
	}
	got := decode[HistogramResponse](t, rec).Counts
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.5 {
			t.Fatalf("hist[%d] = %v, want %v (index torn)", i, got[i], want[i])
		}
	}
}
