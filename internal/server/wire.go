package server

// Wire types: the JSON request and response bodies of the v1 API. Every
// response that costs privacy budget echoes the session's remaining budget
// so clients can pace themselves without an extra round trip.

// AttrSpec declares one categorical attribute of a domain.
type AttrSpec struct {
	Name string `json:"name"`
	Size int    `json:"size"`
}

// GraphSpec selects one of the paper's standard secret-graph
// specifications over the declared domain.
//
// Kinds:
//
//	full      — S^full, the complete graph (ε-differential privacy)
//	attr      — S^attr, per-attribute secrets
//	line      — G^{d,1}, the line graph over a 1-D ordered domain
//	l1        — S^{d,θ} under the L1 metric; requires Theta
//	linf      — S^{d,θ} under the L∞ metric; requires Theta
//	partition — S^P over a uniform grid partition; requires Blocks or Widths
type GraphSpec struct {
	Kind string `json:"kind"`
	// Theta is the distance threshold for kinds l1 and linf.
	Theta float64 `json:"theta,omitempty"`
	// Blocks is the approximate block count for kind partition (aspect-ratio
	// preserving uniform grid).
	Blocks int `json:"blocks,omitempty"`
	// Widths gives explicit per-attribute cell widths for kind partition;
	// it takes precedence over Blocks.
	Widths []int `json:"widths,omitempty"`
}

// CreatePolicyRequest declares a domain and a secret-graph specification.
type CreatePolicyRequest struct {
	Domain []AttrSpec `json:"domain"`
	Graph  GraphSpec  `json:"graph"`
}

// PolicyResponse describes a registered policy.
type PolicyResponse struct {
	ID         string     `json:"id"`
	Name       string     `json:"name"`
	Domain     []AttrSpec `json:"domain"`
	DomainSize int64      `json:"domain_size"`
	// HistogramSensitivity is S(h, P), the noise driver for histogram
	// releases (Theorem 5.1).
	HistogramSensitivity float64 `json:"histogram_sensitivity"`
}

// CreateDatasetRequest uploads a dataset as integer rows, one tuple per
// row, over either an inline domain or the domain of a registered policy.
type CreateDatasetRequest struct {
	// PolicyID borrows the domain of a registered policy; mutually
	// exclusive with Domain.
	PolicyID string     `json:"policy_id,omitempty"`
	Domain   []AttrSpec `json:"domain,omitempty"`
	Rows     [][]int    `json:"rows"`
}

// DatasetResponse describes a registered dataset.
type DatasetResponse struct {
	ID     string     `json:"id"`
	Rows   int        `json:"rows"`
	Domain []AttrSpec `json:"domain"`
}

// CreateSessionRequest opens a budgeted release session against a policy.
type CreateSessionRequest struct {
	PolicyID string  `json:"policy_id"`
	Budget   float64 `json:"budget"`
	// Seed optionally fixes the session's noise stream for reproducible
	// runs: a seeded session uses a single noise shard so the same seed
	// and request sequence replay identically on any host. Omitted, the
	// server derives a fresh per-session seed and shards the noise pool
	// per CPU for parallel release throughput.
	Seed *int64 `json:"seed,omitempty"`
}

// ReleaseRecord is one entry of a session's budget ledger.
type ReleaseRecord struct {
	Label   string  `json:"label"`
	Epsilon float64 `json:"epsilon"`
}

// SessionResponse describes a session and its budget ledger.
type SessionResponse struct {
	ID        string          `json:"id"`
	PolicyID  string          `json:"policy_id"`
	Budget    float64         `json:"budget"`
	Spent     float64         `json:"spent"`
	Remaining float64         `json:"remaining"`
	Releases  []ReleaseRecord `json:"releases,omitempty"`
}

// HistogramRequest draws a complete (or partition-block) histogram release.
type HistogramRequest struct {
	DatasetID string  `json:"dataset_id"`
	Epsilon   float64 `json:"epsilon"`
}

// HistogramResponse carries the noisy counts.
type HistogramResponse struct {
	Counts    []float64 `json:"counts"`
	Remaining float64   `json:"remaining"`
}

// CumulativeRequest draws an Ordered Mechanism cumulative histogram.
type CumulativeRequest struct {
	DatasetID string  `json:"dataset_id"`
	Epsilon   float64 `json:"epsilon"`
}

// CumulativeResponse carries the raw noisy cumulative counts and the
// constrained-inference estimate (monotone, clamped to [0, n]).
type CumulativeResponse struct {
	Raw       []float64 `json:"raw"`
	Inferred  []float64 `json:"inferred"`
	Remaining float64   `json:"remaining"`
}

// RangeQuery is one inclusive range count query q[lo, hi].
type RangeQuery struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// RangeRequest builds one Ordered Hierarchical release (charging Epsilon
// once) and answers every query against it.
type RangeRequest struct {
	DatasetID string  `json:"dataset_id"`
	Epsilon   float64 `json:"epsilon"`
	// Fanout is the hierarchy branching factor; defaults to 16.
	Fanout  int          `json:"fanout,omitempty"`
	Queries []RangeQuery `json:"queries"`
}

// RangeResponse carries one answer per query, in request order.
type RangeResponse struct {
	Answers   []float64 `json:"answers"`
	Remaining float64   `json:"remaining"`
}
