package service

// White-box accessors: narrow windows into a core's live entries for the
// crash/recovery tests and the load harness. They expose library handles
// (tables, sessions, streams), never the registry internals, so tests can
// read cursors and ledgers without reaching across package boundaries into
// unexported state.

import "blowfish"

// Abandon simulates a crash on a durable core: the auto-checkpoint loop is
// stopped and the WAL file handle is closed with NO final checkpoint and
// NO goroutine drain — the moral equivalent of kill -9, minus the process
// exit. Recovery tests open a fresh core over the same directory
// afterwards. No-op on an in-memory core.
func (c *Core) Abandon() {
	if c.persist == nil {
		return
	}
	c.persist.stopAutoCheckpoint()
	_ = c.persist.log.Close()
}

// DatasetTable returns the named dataset's stream table, or nil.
func (c *Core) DatasetTable(id string) *blowfish.StreamTable {
	e, ok := c.getDataset(id)
	if !ok {
		return nil
	}
	return e.tbl
}

// DatasetHandle returns the named dataset's library handle, or nil. Reads
// against a dataset with live ingestion must hold its table's read lock
// (DatasetTable).
func (c *Core) DatasetHandle(id string) *blowfish.Dataset {
	e, ok := c.getDataset(id)
	if !ok {
		return nil
	}
	return e.ds
}

// StartedIngestor returns the named dataset's event-log writer if one is
// running, or nil.
func (c *Core) StartedIngestor(id string) *blowfish.StreamIngestor {
	e, ok := c.getDataset(id)
	if !ok {
		return nil
	}
	return e.startedIngestor()
}

// HasDataset reports whether a dataset id is registered.
func (c *Core) HasDataset(id string) bool {
	_, ok := c.getDataset(id)
	return ok
}

// HasStream reports whether a stream id is live.
func (c *Core) HasStream(id string) bool {
	_, ok := c.getStream(id)
	return ok
}

// IngestStartSeq reports the sequence number the named dataset's next
// ingestor resumes from (set by recovery to the table cursor), or 0.
func (c *Core) IngestStartSeq(id string) uint64 {
	e, ok := c.getDataset(id)
	if !ok {
		return 0
	}
	return e.ingCfg.StartSeq
}

// SessionHandle returns the named session's library handle, or nil. The
// idle timer is not refreshed.
func (c *Core) SessionHandle(id string) *blowfish.Session {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.sessions[id]
	if !ok {
		return nil
	}
	return e.sess
}

// StreamHandles returns the named stream's library handle and its backing
// session, or nils.
func (c *Core) StreamHandles(id string) (*blowfish.Stream, *blowfish.Session) {
	e, ok := c.getStream(id)
	if !ok {
		return nil, nil
	}
	return e.st, e.sess
}
