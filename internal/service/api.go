package service

// The request/response API of a Core. Each method mirrors one v1
// endpoint of the HTTP front, takes the wire-level request, and returns
// the wire-level response or a *Error. The Apply* variants create a
// resource under a caller-chosen id — the shard router mints ids
// centrally so one logical namespace spans every shard; a replayed or
// routed create must land under exactly the id the caller assigned.

import (
	"blowfish"
)

// --- policies --------------------------------------------------------------

// CreatePolicy registers and compiles a policy, minting its id.
func (c *Core) CreatePolicy(req CreatePolicyRequest) (PolicyResponse, error) {
	return c.putPolicy("", req)
}

// ApplyPolicy registers a policy under an explicit id (shard router /
// replication path). The id's numeric suffix advances the core's own
// counter so locally minted ids never collide with applied ones.
func (c *Core) ApplyPolicy(id string, req CreatePolicyRequest) (PolicyResponse, error) {
	if id == "" {
		return PolicyResponse{}, errf(CodeBadRequest, "apply needs an explicit id")
	}
	return c.putPolicy(id, req)
}

func (c *Core) putPolicy(id string, req CreatePolicyRequest) (PolicyResponse, error) {
	e, err := buildPolicyEntry(req.Domain, req.Graph)
	if err != nil {
		return PolicyResponse{}, badRequest(err)
	}
	c.mu.Lock()
	if id == "" {
		id = c.newID(0, "pol")
	} else {
		bumpCounter(&c.nextID[0], id)
		if _, dup := c.policies[id]; dup {
			c.mu.Unlock()
			return PolicyResponse{}, errf(CodeBadRequest, "policy %q already exists", id)
		}
	}
	e.id = id
	if err := c.journal(recPolicyPut, walPolicyPut{ID: e.id, Domain: e.attrs, Graph: e.graph}); err != nil {
		c.mu.Unlock()
		return PolicyResponse{}, durabilityErr(err)
	}
	c.policies[e.id] = e
	c.mu.Unlock()
	return policyResponse(e), nil
}

func policyResponse(e *policyEntry) PolicyResponse {
	return PolicyResponse{
		ID:                   e.id,
		Name:                 e.pol.Name(),
		Domain:               e.attrs,
		DomainSize:           e.pol.Domain().Size(),
		HistogramSensitivity: e.histSens,
		Edges:                e.edges,
		Components:           e.components,
	}
}

// GetPolicy describes a registered policy.
func (c *Core) GetPolicy(id string) (PolicyResponse, error) {
	e, ok := c.getPolicy(id)
	if !ok {
		return PolicyResponse{}, errf(CodeUnknownPolicy, "no policy %q", id)
	}
	return policyResponse(e), nil
}

// PolicySpec returns the wire-level declaration a policy was registered
// with — the exact request that rebuilds it (the shard router uses it to
// restore a broadcast delete that one shard refused).
func (c *Core) PolicySpec(id string) (CreatePolicyRequest, error) {
	e, ok := c.getPolicy(id)
	if !ok {
		return CreatePolicyRequest{}, errf(CodeUnknownPolicy, "no policy %q", id)
	}
	return CreatePolicyRequest{Domain: e.attrs, Graph: e.graph}, nil
}

// ListPolicies enumerates registered policies in id order.
func (c *Core) ListPolicies() ListPoliciesResponse {
	entries := snapshotSorted(c, c.policies, func(e *policyEntry) string { return e.id })
	resp := ListPoliciesResponse{Policies: make([]PolicyResponse, len(entries))}
	for i, e := range entries {
		resp.Policies[i] = policyResponse(e)
	}
	return resp
}

// DeletePolicy unregisters a policy. Deletion is refused while any live
// session or stream references it: a release against such a session would
// otherwise silently lose the policy's partition and fall back to a
// different mechanism.
func (c *Core) DeletePolicy(id string) error {
	c.mu.Lock()
	_, ok := c.policies[id]
	if !ok {
		c.mu.Unlock()
		return errf(CodeUnknownPolicy, "no policy %q", id)
	}
	for _, sess := range c.sessions {
		if sess.policyID == id {
			c.mu.Unlock()
			return errf(CodePolicyInUse, "policy %q has live sessions (e.g. %q); delete or expire them first", id, sess.id)
		}
	}
	for _, st := range c.streams {
		if st.policyID == id {
			c.mu.Unlock()
			return errf(CodePolicyInUse, "policy %q has live streams (e.g. %q); delete them first", id, st.id)
		}
	}
	if err := c.journalDelete(nsPolicy, id); err != nil {
		c.mu.Unlock()
		return durabilityErr(err)
	}
	delete(c.policies, id)
	c.mu.Unlock()
	return nil
}

// --- datasets --------------------------------------------------------------

// CreateDataset uploads and registers a dataset, minting its id.
func (c *Core) CreateDataset(req CreateDatasetRequest) (DatasetResponse, error) {
	return c.putDataset("", req)
}

// ApplyDataset registers a dataset under an explicit id (shard router).
func (c *Core) ApplyDataset(id string, req CreateDatasetRequest) (DatasetResponse, error) {
	if id == "" {
		return DatasetResponse{}, errf(CodeBadRequest, "apply needs an explicit id")
	}
	return c.putDataset(id, req)
}

func (c *Core) putDataset(id string, req CreateDatasetRequest) (DatasetResponse, error) {
	var attrs []AttrSpec
	switch {
	case req.PolicyID != "" && len(req.Domain) > 0:
		return DatasetResponse{}, errf(CodeBadRequest, "give policy_id or domain, not both")
	case req.PolicyID != "":
		pe, ok := c.getPolicy(req.PolicyID)
		if !ok {
			return DatasetResponse{}, errf(CodeUnknownPolicy, "no policy %q", req.PolicyID)
		}
		attrs = pe.attrs
	case len(req.Domain) > 0:
		attrs = req.Domain
	default:
		return DatasetResponse{}, errf(CodeBadRequest, "dataset needs a policy_id or an inline domain")
	}
	dom, err := buildDomain(attrs)
	if err != nil {
		return DatasetResponse{}, badRequest(err)
	}
	pts := make([]blowfish.Point, len(req.Rows))
	for i, row := range req.Rows {
		p, err := dom.Encode(row...)
		if err != nil {
			return DatasetResponse{}, errf(CodeBadRequest, "row %d: %v", i, err)
		}
		pts[i] = p
	}
	e, err := c.buildDatasetEntry(attrs, pts)
	if err != nil {
		return DatasetResponse{}, badRequest(err)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return DatasetResponse{}, errf(CodeBadRequest, "server is shutting down")
	}
	if id == "" {
		id = c.newID(1, "ds")
	} else {
		bumpCounter(&c.nextID[1], id)
		if _, dup := c.datasets[id]; dup {
			c.mu.Unlock()
			return DatasetResponse{}, errf(CodeBadRequest, "dataset %q already exists", id)
		}
	}
	e.id = id
	if err := c.journal(recDatasetPut, walDatasetPut{ID: e.id, Domain: e.attrs, Points: pts}); err != nil {
		c.mu.Unlock()
		return DatasetResponse{}, durabilityErr(err)
	}
	if c.persist != nil {
		e.tbl.SetJournal(c.eventJournal(e.id))
	}
	c.datasets[e.id] = e
	c.mu.Unlock()
	return DatasetResponse{ID: e.id, Rows: e.ds.Len(), Domain: e.attrs}, nil
}

// GetDataset describes a registered dataset.
func (c *Core) GetDataset(id string) (DatasetResponse, error) {
	e, ok := c.getDataset(id)
	if !ok {
		return DatasetResponse{}, errf(CodeUnknownDataset, "no dataset %q", id)
	}
	// Row counts read under the table lock: ingestion may be landing.
	e.tbl.RLock()
	rows := e.ds.Len()
	e.tbl.RUnlock()
	return DatasetResponse{ID: e.id, Rows: rows, Domain: e.attrs}, nil
}

// ListDatasets enumerates registered datasets in id order.
func (c *Core) ListDatasets() ListDatasetsResponse {
	entries := snapshotSorted(c, c.datasets, func(e *datasetEntry) string { return e.id })
	resp := ListDatasetsResponse{Datasets: make([]DatasetResponse, len(entries))}
	for i, e := range entries {
		// Row counts read under the table lock: ingestion may be landing.
		e.tbl.RLock()
		rows := e.ds.Len()
		e.tbl.RUnlock()
		resp.Datasets[i] = DatasetResponse{ID: e.id, Rows: rows, Domain: e.attrs}
	}
	return resp
}

// DeleteDataset unregisters a dataset. In-flight releases holding the
// entry finish against their own reference; new requests see the unknown-
// dataset error. Every compiled policy drops its cached index for the
// dataset so the count vectors are released with it.
func (c *Core) DeleteDataset(id string) error {
	c.mu.Lock()
	for _, st := range c.streams {
		if st.datasetID == id {
			c.mu.Unlock()
			return errf(CodeDatasetInUse, "dataset %q has live streams (e.g. %q); delete them first", id, st.id)
		}
	}
	e, ok := c.datasets[id]
	if ok {
		if err := c.journalDelete(nsDataset, id); err != nil {
			c.mu.Unlock()
			return durabilityErr(err)
		}
	}
	delete(c.datasets, id)
	// Snapshot the compiled policies under the registry lock but run
	// Forget after releasing it: Forget takes each plan's own mutex, which
	// an in-flight release may hold for an expensive compile step (a
	// first-use tree build), and every request path needs c.mu.
	var cps []*blowfish.CompiledPolicy
	if ok {
		cps = make([]*blowfish.CompiledPolicy, 0, len(c.policies))
		for _, pe := range c.policies {
			//lint:allow detorder Forget only drops per-plan cached indexes; call order is unobservable (no output, no WAL record, no ledger change)
			cps = append(cps, pe.cp)
		}
	}
	c.mu.Unlock()
	if !ok {
		return errf(CodeUnknownDataset, "no dataset %q", id)
	}
	// Stop the event-log writer (flushing its queue) before dropping the
	// count vectors, so no batch lands on a forgotten index.
	e.closeIngestor()
	for _, cp := range cps {
		cp.Forget(e.ds)
	}
	return nil
}

// --- sessions --------------------------------------------------------------

// CreateSession opens a budgeted release session, minting its id.
func (c *Core) CreateSession(req CreateSessionRequest) (SessionResponse, error) {
	return c.putSession("", req)
}

// ApplySession opens a session under an explicit id (shard router).
func (c *Core) ApplySession(id string, req CreateSessionRequest) (SessionResponse, error) {
	if id == "" {
		return SessionResponse{}, errf(CodeBadRequest, "apply needs an explicit id")
	}
	return c.putSession(id, req)
}

func (c *Core) putSession(id string, req CreateSessionRequest) (SessionResponse, error) {
	pe, ok := c.getPolicy(req.PolicyID)
	if !ok {
		return SessionResponse{}, errf(CodeUnknownPolicy, "no policy %q", req.PolicyID)
	}
	// Sessions run on the policy's compiled plan with one noise shard per
	// CPU, so parallel release requests draw noise concurrently. An
	// explicitly seeded session instead pins a single shard: its noise
	// stream must reproduce across hosts, so it cannot depend on core
	// count.
	seed, shards := c.resolveSeed(req.Seed)
	e, err := c.buildSessionEntry(pe, req.Budget, seed, shards)
	if err != nil {
		return SessionResponse{}, badRequest(err)
	}
	c.mu.Lock()
	// Re-check under the write lock that inserts the session: a concurrent
	// policy deletion in the lookup window must not leave a session
	// referencing an unregistered policy.
	if _, still := c.policies[pe.id]; !still {
		c.mu.Unlock()
		return SessionResponse{}, errf(CodeUnknownPolicy, "no policy %q", req.PolicyID)
	}
	if id == "" {
		id = c.newID(2, "sess")
	} else {
		bumpCounter(&c.nextID[2], id)
		if _, dup := c.sessions[id]; dup {
			c.mu.Unlock()
			return SessionResponse{}, errf(CodeBadRequest, "session %q already exists", id)
		}
	}
	e.id = id
	if err := c.journal(recSessionPut, walSessionPut{
		ID: e.id, PolicyID: pe.id, Budget: req.Budget,
		Seed: seed, Shards: shards, NextSeed: c.nextSeed.Load(),
	}); err != nil {
		c.mu.Unlock()
		return SessionResponse{}, durabilityErr(err)
	}
	c.sessions[e.id] = e
	c.mu.Unlock()
	return sessionResponse(e, false), nil
}

func sessionResponse(e *sessionEntry, withLog bool) SessionResponse {
	acct := e.sess.Accountant()
	resp := SessionResponse{
		ID:        e.id,
		PolicyID:  e.policyID,
		Budget:    acct.Budget(),
		Spent:     acct.Spent(),
		Remaining: acct.Remaining(),
	}
	if withLog {
		for _, rel := range acct.Releases() {
			resp.Releases = append(resp.Releases, ReleaseRecord{Label: rel.Label, Epsilon: rel.Epsilon})
		}
	}
	return resp
}

// sessionFor resolves a session id, reporting the structured
// unknown-session error on miss.
func (c *Core) sessionFor(id string) (*sessionEntry, error) {
	e, ok := c.getSession(id)
	if !ok {
		return nil, errf(CodeUnknownSession, "no session %q (expired or never created)", id)
	}
	return e, nil
}

// GetSession describes a session including its budget ledger.
func (c *Core) GetSession(id string) (SessionResponse, error) {
	e, err := c.sessionFor(id)
	if err != nil {
		return SessionResponse{}, err
	}
	return sessionResponse(e, true), nil
}

// ListSessions enumerates live sessions in id order (without ledgers).
func (c *Core) ListSessions() ListSessionsResponse {
	entries := snapshotSorted(c, c.sessions, func(e *sessionEntry) string { return e.id })
	resp := ListSessionsResponse{Sessions: make([]SessionResponse, len(entries))}
	for i, e := range entries {
		resp.Sessions[i] = sessionResponse(e, false)
	}
	return resp
}

// DeleteSession drops a session.
func (c *Core) DeleteSession(id string) error {
	c.mu.Lock()
	_, ok := c.sessions[id]
	if ok {
		if err := c.journalDelete(nsSession, id); err != nil {
			c.mu.Unlock()
			return durabilityErr(err)
		}
	}
	delete(c.sessions, id)
	c.mu.Unlock()
	if !ok {
		return errf(CodeUnknownSession, "no session %q", id)
	}
	return nil
}

// --- releases --------------------------------------------------------------

// datasetFor resolves a dataset id from a release request body.
func (c *Core) datasetFor(id string) (*datasetEntry, error) {
	e, ok := c.getDataset(id)
	if !ok {
		return nil, errf(CodeUnknownDataset, "no dataset %q", id)
	}
	return e, nil
}

// Histogram draws a complete (or partition-block) histogram release.
func (c *Core) Histogram(sessionID string, req HistogramRequest) (HistogramResponse, error) {
	e, err := c.sessionFor(sessionID)
	if err != nil {
		return HistogramResponse{}, err
	}
	de, err := c.datasetFor(req.DatasetID)
	if err != nil {
		return HistogramResponse{}, err
	}
	// On the durable path the release and its WAL record form one critical
	// section (see sessionEntry.relMu).
	if unlock := c.lockForRelease(e); unlock != nil {
		defer unlock()
	}
	var counts []float64
	// The table read lock orders the release against streaming ingestion:
	// event batches and window expiry take the write side.
	de.tbl.RLock()
	if e.pol.part != nil {
		// Partition policies answer the block histogram h_P; when every
		// secret pair stays within a block the release is exact and free.
		counts, err = e.sess.ReleasePartitionHistogram(de.ds, e.pol.part, req.Epsilon)
	} else {
		counts, err = e.sess.ReleaseHistogram(de.ds, req.Epsilon)
	}
	de.tbl.RUnlock()
	if err != nil {
		return HistogramResponse{}, libError(err)
	}
	if err := c.journalRelease(e, "histogram", req.DatasetID, req.Epsilon, 0); err != nil {
		return HistogramResponse{}, durabilityErr(err)
	}
	//lint:allow truthflow a zero-sensitivity partition release is exact by design: no secret pair crosses a block, so the counts are policy-public (Section 5 coarse-grid observation); any sens>0 path is noised inside the mechanism
	return HistogramResponse{Counts: counts, Remaining: e.sess.Remaining()}, nil
}

// Cumulative draws an Ordered Mechanism cumulative histogram release.
func (c *Core) Cumulative(sessionID string, req CumulativeRequest) (CumulativeResponse, error) {
	e, err := c.sessionFor(sessionID)
	if err != nil {
		return CumulativeResponse{}, err
	}
	de, err := c.datasetFor(req.DatasetID)
	if err != nil {
		return CumulativeResponse{}, err
	}
	if unlock := c.lockForRelease(e); unlock != nil {
		defer unlock()
	}
	de.tbl.RLock()
	rel, err := e.sess.ReleaseCumulativeHistogram(de.ds, req.Epsilon)
	de.tbl.RUnlock()
	if err != nil {
		return CumulativeResponse{}, libError(err)
	}
	if err := c.journalRelease(e, "cumulative", req.DatasetID, req.Epsilon, 0); err != nil {
		return CumulativeResponse{}, durabilityErr(err)
	}
	return CumulativeResponse{
		Raw:       rel.Raw,
		Inferred:  rel.Inferred,
		Remaining: e.sess.Remaining(),
	}, nil
}

const defaultFanout = 16

// Range builds one Ordered Hierarchical release (charging Epsilon once)
// and answers every query against it.
func (c *Core) Range(sessionID string, req RangeRequest) (RangeResponse, error) {
	e, err := c.sessionFor(sessionID)
	if err != nil {
		return RangeResponse{}, err
	}
	if len(req.Queries) == 0 {
		return RangeResponse{}, errf(CodeBadRequest, "range release needs at least one query")
	}
	de, err := c.datasetFor(req.DatasetID)
	if err != nil {
		return RangeResponse{}, err
	}
	// Validate query bounds before building the releaser: a malformed
	// query must not cost budget.
	size := int(de.ds.Domain().Size())
	for i, q := range req.Queries {
		if q.Lo < 0 || q.Hi >= size || q.Lo > q.Hi {
			return RangeResponse{}, errf(CodeBadRequest, "query %d: invalid range [%d,%d] over domain size %d", i, q.Lo, q.Hi, size)
		}
	}
	fanout := req.Fanout
	if fanout == 0 {
		fanout = defaultFanout
	}
	if unlock := c.lockForRelease(e); unlock != nil {
		defer unlock()
	}
	// The released structure is a snapshot; only its construction needs to
	// be ordered against streaming ingestion.
	de.tbl.RLock()
	rel, err := e.sess.NewRangeReleaser(de.ds, fanout, req.Epsilon)
	de.tbl.RUnlock()
	if err != nil {
		return RangeResponse{}, libError(err)
	}
	if err := c.journalRelease(e, "range", req.DatasetID, req.Epsilon, fanout); err != nil {
		return RangeResponse{}, durabilityErr(err)
	}
	answers := make([]float64, len(req.Queries))
	for i, q := range req.Queries {
		answers[i], err = rel.Range(q.Lo, q.Hi)
		if err != nil {
			return RangeResponse{}, errf(CodeBadRequest, "query %d: %v", i, err)
		}
	}
	return RangeResponse{Answers: answers, Remaining: e.sess.Remaining()}, nil
}

// --- enumeration (shard router rebuild) ------------------------------------

// PolicyIDs returns the registered policy ids in id order.
func (c *Core) PolicyIDs() []string {
	entries := snapshotSorted(c, c.policies, func(e *policyEntry) string { return e.id })
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.id
	}
	return out
}

// DatasetIDs returns the registered dataset ids in id order.
func (c *Core) DatasetIDs() []string {
	entries := snapshotSorted(c, c.datasets, func(e *datasetEntry) string { return e.id })
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.id
	}
	return out
}

// SessionIDs returns the live session ids in id order.
func (c *Core) SessionIDs() []string {
	entries := snapshotSorted(c, c.sessions, func(e *sessionEntry) string { return e.id })
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.id
	}
	return out
}

// StreamIDs returns the live stream ids in id order.
func (c *Core) StreamIDs() []string {
	entries := snapshotSorted(c, c.streams, func(e *streamEntry) string { return e.id })
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.id
	}
	return out
}

// HasSession reports whether a session id is live (no idle-timer refresh).
func (c *Core) HasSession(id string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.sessions[id]
	return ok
}

// HasPolicy reports whether a policy id is registered.
func (c *Core) HasPolicy(id string) bool {
	_, ok := c.getPolicy(id)
	return ok
}
