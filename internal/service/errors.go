package service

import (
	"errors"
	"fmt"

	"blowfish"
)

// Error codes carried in the "error.code" field of failure responses.
// Clients branch on the code, not the message; fronts map codes onto
// transport-level statuses (internal/server maps them to HTTP statuses).
const (
	CodeBadRequest      = "bad_request"
	CodeUnknownPolicy   = "unknown_policy"
	CodeUnknownDataset  = "unknown_dataset"
	CodeUnknownSession  = "unknown_session"
	CodeUnknownStream   = "unknown_stream"
	CodeDomainMismatch  = "domain_mismatch"
	CodeBudgetExhausted = "budget_exhausted"
	CodePolicyInUse     = "policy_in_use"
	CodeDatasetInUse    = "dataset_in_use"
	CodeDurability      = "durability_error"
	CodeQueueFull       = "queue_full"
)

// Codes is the canonical registry of every error code the service can
// emit. blowfish-vet's errcode analyzer enforces the contract: every
// Code* constant is listed here, every constructed *Error carries a
// registered code, and internal/server's httpStatus mapping explicitly
// covers the whole table. Adding a code means adding it here and giving
// it a status in the same change.
var Codes = []string{
	CodeBadRequest,
	CodeUnknownPolicy,
	CodeUnknownDataset,
	CodeUnknownSession,
	CodeUnknownStream,
	CodeDomainMismatch,
	CodeBudgetExhausted,
	CodePolicyInUse,
	CodeDatasetInUse,
	CodeDurability,
	CodeQueueFull,
}

// Error is the structured service failure every Core method reports:
// a stable machine code plus a human message. Fronts translate the code
// (HTTP status, Retry-After hints); the message passes through verbatim.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *Error) Error() string { return e.Code + ": " + e.Message }

// errf builds a coded error with a formatted message.
func errf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// badRequest wraps a validation failure as the generic bad_request code.
func badRequest(err error) *Error {
	return &Error{Code: CodeBadRequest, Message: err.Error()}
}

// durabilityErr reports a refused write-ahead append.
func durabilityErr(err error) *Error {
	return &Error{Code: CodeDurability, Message: err.Error()}
}

// libError maps a blowfish library error onto the structured error
// vocabulary: budget exhaustion and domain mismatches get their dedicated
// codes, everything else is a bad request.
func libError(err error) *Error {
	switch {
	case errors.Is(err, blowfish.ErrBudgetExceeded):
		return &Error{Code: CodeBudgetExhausted, Message: err.Error()}
	case errors.Is(err, blowfish.ErrDomainMismatch):
		return &Error{Code: CodeDomainMismatch, Message: err.Error()}
	default:
		return &Error{Code: CodeBadRequest, Message: err.Error()}
	}
}

// ErrNotDurable reports Checkpoint on a core with no data directory.
var ErrNotDurable = errors.New("server: not durable (no data directory configured)")
