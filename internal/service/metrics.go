package service

// Observability: the core's metric families and scrape-time collectors.
//
// Two disciplines keep instrumentation off the hot paths. First, every
// metric a hot path touches is pre-resolved: the engine gets bare
// counter/histogram pointers per policy at session construction, the
// ingest writer gets its instruments in its config, and the HTTP front
// resolves each route's latency histogram at route registration — no
// label-map lookups per operation. Second, anything derived or high-churn
// (per-session budget gauges, ingest queue depth, epoch lag, long-poll
// waiters) is computed only when /metrics is scraped, by collectors that
// read the registries under the core's ordinary locks.
//
// Naming convention: blowfish_<subsystem>_<quantity>[_unit], latencies in
// seconds (Prometheus base units), counters suffixed _total. Cardinality
// budget: per-policy and per-kind labels are bounded by the registry (a
// handful of policies × 5 release kinds); per-session and per-stream
// series exist only at scrape time and scale with the live registry, which
// the session TTL sweeper bounds.
//
// Sharded deployments give each core a ShardLabel; the registry stamps it
// onto every family as a constant shard="<i>" label, so the merged
// exposition keeps per-shard series distinct without any per-sample labels
// on the hot paths. A core with no ShardLabel (the single-core default)
// adds nothing — its exposition is byte-identical to the pre-shard layout.

import (
	"runtime"
	"time"

	"blowfish"
	"blowfish/internal/metrics"
	"blowfish/internal/wal"
)

// coreMetrics bundles the registry and every pre-resolved family.
type coreMetrics struct {
	reg *metrics.Registry

	httpRequests *metrics.CounterVec   // route, status
	httpLatency  *metrics.HistogramVec // route
	queueFull    *metrics.Counter

	releaseLatency *metrics.HistogramVec // policy, kind
	releaseCount   *metrics.CounterVec   // policy, kind
	noiseDraws     *metrics.Counter

	ingest *blowfish.StreamIngestMetrics

	wal             *wal.Metrics
	snapshotSeconds *metrics.Histogram
	snapshotBytes   *metrics.Gauge
	checkpoints     *metrics.Counter

	closeLeaked *metrics.Gauge
}

func newCoreMetrics(shardLabel string) *coreMetrics {
	reg := metrics.NewRegistry()
	if shardLabel != "" {
		reg.SetConstLabels(metrics.Label{Name: "shard", Value: shardLabel})
	}
	m := &coreMetrics{
		reg: reg,
		httpRequests: reg.CounterVec("blowfish_http_requests_total",
			"HTTP requests by route pattern and status code.", "route", "status"),
		httpLatency: reg.HistogramVec("blowfish_http_request_seconds",
			"HTTP request latency by route pattern.", nil, "route"),
		queueFull: reg.Counter("blowfish_ingest_queue_full_total",
			"Event batches rejected whole with 429 queue_full backpressure."),
		releaseLatency: reg.HistogramVec("blowfish_release_seconds",
			"Release latency (truth read + noise + budget charge) by policy and kind.",
			nil, "policy", "kind"),
		releaseCount: reg.CounterVec("blowfish_releases_total",
			"Successful releases by policy and kind.", "policy", "kind"),
		noiseDraws: reg.Counter("blowfish_noise_draws_total",
			"Noise-shard acquisitions (noisy releases started)."),
		ingest: &blowfish.StreamIngestMetrics{
			ApplySeconds: reg.Histogram("blowfish_ingest_apply_seconds",
				"Ingest batch apply latency (journal append + index update).", nil),
			Batches: reg.Counter("blowfish_ingest_batches_total",
				"Ingest batches applied."),
			Events: reg.Counter("blowfish_ingest_events_total",
				"Events applied (all datasets)."),
			Rejected: reg.Counter("blowfish_ingest_rejected_total",
				"Events rejected at apply time (bad tuple ids)."),
			JournalFailures: reg.Counter("blowfish_ingest_journal_failures_total",
				"Ingest batches refused by a failed write-ahead append."),
		},
		wal: &wal.Metrics{
			FsyncSeconds: reg.Histogram("blowfish_wal_fsync_seconds",
				"WAL fsync latency.", nil),
			Appends: reg.Counter("blowfish_wal_appends_total",
				"WAL records appended."),
			Bytes: reg.Counter("blowfish_wal_bytes_total",
				"WAL bytes journaled (framing included)."),
			Segments: reg.Gauge("blowfish_wal_segments",
				"Live WAL segment files."),
		},
		snapshotSeconds: reg.Histogram("blowfish_snapshot_seconds",
			"Checkpoint snapshot duration (serialize + durable write + log rotation).",
			[]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}),
		snapshotBytes: reg.Gauge("blowfish_snapshot_bytes",
			"Size of the most recent checkpoint snapshot."),
		checkpoints: reg.Counter("blowfish_checkpoints_total",
			"Completed checkpoints."),
		closeLeaked: reg.Gauge("blowfish_close_leaked_goroutines",
			"Stream/ingest goroutines still alive when Server.Close gave up waiting."),
	}
	return m
}

// engineMetrics resolves the per-policy engine instruments. Called once
// per session construction; the children live in the vec maps, so two
// sessions of one policy share series.
func (m *coreMetrics) engineMetrics(policyID string) *blowfish.EngineMetrics {
	rel := func(kind string) blowfish.EngineReleaseMetrics {
		return blowfish.EngineReleaseMetrics{
			Latency: m.releaseLatency.With(policyID, kind),
			Count:   m.releaseCount.With(policyID, kind),
		}
	}
	return &blowfish.EngineMetrics{
		Histogram:  rel("histogram"),
		Partition:  rel("partition"),
		Cumulative: rel("cumulative"),
		Range:      rel("range"),
		KMeans:     rel("kmeans"),
		NoiseDraws: m.noiseDraws,
	}
}

// Metrics returns the core's metric registry, for mounting the exposition
// on an admin mux or merging several shards' registries into one endpoint.
func (c *Core) Metrics() *metrics.Registry { return c.metrics.reg }

// Registries returns every metrics registry backing this service — one for
// a single core. The Service interface carries it so a front can build a
// merged /metrics exposition without knowing how many cores sit behind it.
func (c *Core) Registries() []*metrics.Registry { return []*metrics.Registry{c.metrics.reg} }

// HTTPMetrics returns the request counter and latency histogram families a
// front wraps around its routes. They live in the core's registry so a
// single-core server's exposition stays one registry; a multi-core front
// (the shard router) registers its own.
func (c *Core) HTTPMetrics() (*metrics.CounterVec, *metrics.HistogramVec) {
	return c.metrics.httpRequests, c.metrics.httpLatency
}

// registerCollectors installs the scrape-time sample producers.
func (c *Core) registerCollectors() {
	c.metrics.reg.RegisterCollector(c.collectRegistries)
	c.metrics.reg.RegisterCollector(c.collectSessions)
	c.metrics.reg.RegisterCollector(c.collectStreams)
	c.metrics.reg.RegisterCollector(c.collectIngest)
	c.metrics.reg.RegisterCollector(collectRuntime)
}

// collectRegistries emits the live-resource counts.
func (c *Core) collectRegistries(emit func(metrics.Sample)) {
	c.mu.RLock()
	counts := []struct {
		kind string
		n    int
	}{
		{"policies", len(c.policies)},
		{"datasets", len(c.datasets)},
		{"sessions", len(c.sessions)},
		{"streams", len(c.streams)},
	}
	c.mu.RUnlock()
	for _, ct := range counts {
		emit(metrics.Sample{
			Name: "blowfish_resources", Help: "Live registry entries by kind.",
			Kind:   metrics.KindGauge,
			Labels: []metrics.Label{{Name: "kind", Value: ct.kind}},
			Value:  float64(ct.n),
		})
	}
}

// collectSessions emits per-session budget spent/remaining gauges. The
// accountant reads are atomic snapshots; the series set tracks the live
// session registry (bounded by the TTL sweeper).
func (c *Core) collectSessions(emit func(metrics.Sample)) {
	for _, e := range snapshotSorted(c, c.sessions, func(e *sessionEntry) string { return e.id }) {
		acct := e.sess.Accountant()
		labels := []metrics.Label{
			{Name: "session", Value: e.id},
			{Name: "policy", Value: e.policyID},
		}
		emit(metrics.Sample{
			Name: "blowfish_session_budget_spent",
			Help: "Privacy budget (epsilon) charged so far, per session.",
			Kind: metrics.KindGauge, Labels: labels, Value: acct.Spent(),
		})
		emit(metrics.Sample{
			Name: "blowfish_session_budget_remaining",
			Help: "Privacy budget (epsilon) left, per session.",
			Kind: metrics.KindGauge, Labels: labels, Value: acct.Remaining(),
		})
	}
}

// collectStreams emits per-stream progress: epoch lag (now − last epoch
// close), buffered releases, long-poll waiters, remaining budget.
func (c *Core) collectStreams(emit func(metrics.Sample)) {
	now := time.Now()
	for _, e := range snapshotSorted(c, c.streams, func(e *streamEntry) string { return e.id }) {
		st := e.st.Status()
		labels := []metrics.Label{{Name: "stream", Value: e.id}}
		emit(metrics.Sample{
			Name: "blowfish_stream_epoch_lag_seconds",
			Help: "Time since the stream's last successful epoch close.",
			Kind: metrics.KindGauge, Labels: labels,
			Value: now.Sub(st.LastClose).Seconds(),
		})
		emit(metrics.Sample{
			Name: "blowfish_stream_epoch",
			Help: "Epochs closed so far, per stream.",
			Kind: metrics.KindGauge, Labels: labels, Value: float64(st.Epoch),
		})
		emit(metrics.Sample{
			Name: "blowfish_stream_waiters",
			Help: "Long-poll release-cursor readers currently parked, per stream.",
			Kind: metrics.KindGauge, Labels: labels, Value: float64(st.Waiters),
		})
		emit(metrics.Sample{
			Name: "blowfish_stream_releases_buffered",
			Help: "Releases held in the stream's in-memory buffer.",
			Kind: metrics.KindGauge, Labels: labels, Value: float64(st.Releases),
		})
		emit(metrics.Sample{
			Name: "blowfish_stream_budget_remaining",
			Help: "Privacy budget (epsilon) left on the stream's session.",
			Kind: metrics.KindGauge, Labels: labels, Value: st.Remaining,
		})
	}
}

// collectIngest emits per-dataset queue depth and sequence cursors for
// every started ingestor.
func (c *Core) collectIngest(emit func(metrics.Sample)) {
	for _, e := range snapshotSorted(c, c.datasets, func(e *datasetEntry) string { return e.id }) {
		ing := e.startedIngestor()
		if ing == nil {
			continue
		}
		st := ing.Stats()
		labels := []metrics.Label{{Name: "dataset", Value: e.id}}
		emit(metrics.Sample{
			Name: "blowfish_ingest_queue_depth",
			Help: "Events waiting in the ingest queue, per dataset.",
			Kind: metrics.KindGauge, Labels: labels, Value: float64(st.Queued),
		})
		emit(metrics.Sample{
			Name: "blowfish_ingest_submitted_seq",
			Help: "Highest event sequence number assigned, per dataset.",
			Kind: metrics.KindGauge, Labels: labels, Value: float64(st.Submitted),
		})
		emit(metrics.Sample{
			Name: "blowfish_ingest_processed_seq",
			Help: "Highest event sequence number applied, per dataset.",
			Kind: metrics.KindGauge, Labels: labels, Value: float64(st.Processed),
		})
	}
}

// collectRuntime emits the process-level gauges a leak investigation
// starts from.
func collectRuntime(emit func(metrics.Sample)) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	emit(metrics.Sample{
		Name: "go_goroutines", Help: "Live goroutines.",
		Kind: metrics.KindGauge, Value: float64(runtime.NumGoroutine()),
	})
	emit(metrics.Sample{
		Name: "go_memstats_heap_alloc_bytes", Help: "Heap bytes in use.",
		Kind: metrics.KindGauge, Value: float64(ms.HeapAlloc),
	})
	emit(metrics.Sample{
		Name: "go_memstats_total_alloc_bytes_total", Help: "Cumulative heap bytes allocated.",
		Kind: metrics.KindCounter, Value: float64(ms.TotalAlloc),
	})
	emit(metrics.Sample{
		Name: "go_gc_cycles_total", Help: "Completed GC cycles.",
		Kind: metrics.KindCounter, Value: float64(ms.NumGC),
	})
}
