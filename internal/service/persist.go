package service

// Durability: the write-ahead log and snapshot integration. Every
// state-changing operation the core acknowledges is journaled first
// (write-ahead), so a crash can lose only work no client was told
// succeeded; Checkpoint serializes the four registries — policies,
// datasets, sessions, streams — plus budget ledgers, noise-stream
// positions, ingest cursors and release buffers into one snapshot, after
// which the covered WAL prefix is retired.
//
// Consistency model. The snapshot records the WAL position (startLSN)
// *before* serializing any entry, and every record carries a per-entry
// replay cursor — the event sequence number for ingest batches, the epoch
// number for stream closes, the release ordinal for ad-hoc session
// releases, the resource id for creates and deletes. Replay applies a
// record only when its cursor is past the snapshot's, so a record that
// landed while the checkpoint was serializing (and is therefore both in
// the snapshot and in the replayed tail) applies exactly once. Each
// journal append shares a critical section with the state change it
// describes (the table lock for ingest, the stream's epoch lock for
// closes, the session's release lock for ad-hoc releases, the registry
// lock for creates and deletes), so an exported entry can never show a
// state change whose record is missing, or vice versa.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"blowfish"
	"blowfish/internal/wal"
)

// DurabilityConfig enables the write-ahead log. The zero value (empty Dir)
// disables persistence entirely.
type DurabilityConfig struct {
	// Dir is the data directory for WAL segments and snapshots.
	Dir string
	// Fsync is "always" (default: acked operations survive kill -9 and
	// power loss), "interval" (bounded loss, higher throughput) or "never"
	// (page cache only).
	Fsync string
	// FsyncInterval is the sync period for Fsync == "interval"; defaults
	// to 100ms.
	FsyncInterval time.Duration
	// SnapshotEvery triggers an automatic checkpoint after this many WAL
	// records; 0 means snapshots happen only at graceful shutdown and via
	// POST /v1/admin/checkpoint.
	SnapshotEvery int
}

// WAL record kinds.
const (
	recPolicyPut byte = iota + 1
	recDatasetPut
	recSessionPut
	recStreamPut
	recDelete
	recEvents
	recRelease
	recEpoch
)

// Registry namespaces for recDelete.
const (
	nsPolicy  = "policy"
	nsDataset = "dataset"
	nsSession = "session"
	nsStream  = "stream"
)

type walPolicyPut struct {
	ID     string     `json:"id"`
	Domain []AttrSpec `json:"domain"`
	Graph  GraphSpec  `json:"graph"`
}

type walDatasetPut struct {
	ID     string           `json:"id"`
	Domain []AttrSpec       `json:"domain"`
	Points []blowfish.Point `json:"points"`
}

type walSessionPut struct {
	ID       string  `json:"id"`
	PolicyID string  `json:"policy_id"`
	Budget   float64 `json:"budget"`
	Seed     int64   `json:"seed"`
	Shards   int     `json:"shards"`
	NextSeed int64   `json:"next_seed"`
}

type walStreamPut struct {
	ID       string              `json:"id"`
	Req      CreateStreamRequest `json:"req"`
	Seed     int64               `json:"seed"`
	Shards   int                 `json:"shards"`
	NextSeed int64               `json:"next_seed"`
}

type walDelete struct {
	NS string `json:"ns"`
	ID string `json:"id"`
}

// walMut is one dataset mutation in an ingest record, compactly keyed.
type walMut struct {
	O uint8          `json:"o"`
	I int            `json:"i,omitempty"`
	P blowfish.Point `json:"p,omitempty"`
}

type walEvents struct {
	DatasetID string   `json:"dataset_id"`
	First     uint64   `json:"first"`
	Muts      []walMut `json:"muts"`
}

type walRelease struct {
	SessionID string  `json:"session_id"`
	Ordinal   uint64  `json:"ordinal"`
	Kind      string  `json:"kind"` // histogram, cumulative, range
	DatasetID string  `json:"dataset_id"`
	Epsilon   float64 `json:"epsilon"`
	Fanout    int     `json:"fanout,omitempty"`
}

type walEpoch struct {
	StreamID string `json:"stream_id"`
	Epoch    int    `json:"epoch"`
}

// Snapshot payload: the whole core, JSON-encoded inside a wal snapshot
// frame.
type snapServer struct {
	NextID   [4]uint64     `json:"next_id"`
	NextSeed int64         `json:"next_seed"`
	Policies []snapPolicy  `json:"policies,omitempty"`
	Datasets []snapDataset `json:"datasets,omitempty"`
	Sessions []snapSession `json:"sessions,omitempty"`
	Streams  []snapStream  `json:"streams,omitempty"`
}

type snapPolicy struct {
	ID     string     `json:"id"`
	Domain []AttrSpec `json:"domain"`
	Graph  GraphSpec  `json:"graph"`
}

type snapDataset struct {
	ID     string                    `json:"id"`
	Domain []AttrSpec                `json:"domain"`
	Points []blowfish.Point          `json:"points"`
	Table  blowfish.StreamTableState `json:"table"`
}

type snapSession struct {
	ID       string                `json:"id"`
	PolicyID string                `json:"policy_id"`
	Budget   float64               `json:"budget"`
	Seed     int64                 `json:"seed"`
	Shards   int                   `json:"shards"`
	Ordinal  uint64                `json:"ordinal"`
	State    blowfish.SessionState `json:"state"`
}

type snapStream struct {
	ID      string                `json:"id"`
	Req     CreateStreamRequest   `json:"req"`
	Seed    int64                 `json:"seed"`
	Shards  int                   `json:"shards"`
	State   blowfish.StreamState  `json:"state"`
	Session blowfish.SessionState `json:"session"`
}

// persistence owns the WAL and the checkpoint machinery.
type persistence struct {
	log *wal.Log
	cfg DurabilityConfig

	// cpMu single-flights checkpoints.
	cpMu sync.Mutex

	// sinceSnap counts records appended since the last checkpoint; the
	// auto-checkpoint loop fires when it passes SnapshotEvery.
	countMu   sync.Mutex
	sinceSnap int

	trigger  chan struct{}
	quit     chan struct{}
	loopDone chan struct{}
	stopOnce sync.Once
}

func newPersistence(log *wal.Log, cfg DurabilityConfig) *persistence {
	return &persistence{
		log:      log,
		cfg:      cfg,
		trigger:  make(chan struct{}, 1),
		quit:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
}

// bump counts one appended record, nudging the auto-checkpoint loop when
// the threshold passes.
func (p *persistence) bump() {
	if p.cfg.SnapshotEvery <= 0 {
		return
	}
	p.countMu.Lock()
	p.sinceSnap++
	fire := p.sinceSnap >= p.cfg.SnapshotEvery
	p.countMu.Unlock()
	if fire {
		select {
		case p.trigger <- struct{}{}:
		default:
		}
	}
}

func (p *persistence) resetCount() {
	p.countMu.Lock()
	p.sinceSnap = 0
	p.countMu.Unlock()
}

// autoCheckpointLoop runs checkpoints when the record counter passes the
// configured threshold. Errors are swallowed: a failed snapshot costs
// recovery time, never durability (the WAL keeps everything).
func (c *Core) autoCheckpointLoop() {
	p := c.persist
	defer close(p.loopDone)
	for {
		select {
		case <-p.quit:
			return
		case <-p.trigger:
			_, _ = c.Checkpoint()
		}
	}
}

func (p *persistence) stopAutoCheckpoint() {
	p.stopOnce.Do(func() { close(p.quit) })
	<-p.loopDone
}

// journal appends one record, honoring the fsync policy (wal.Append syncs
// under fsync=always).
func (c *Core) journal(kind byte, v any) error {
	if c.persist == nil {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("service: encoding wal record: %w", err)
	}
	if _, err := c.persist.log.Append(kind, data); err != nil {
		return err
	}
	c.persist.bump()
	return nil
}

// journalDelete journals a registry removal.
func (c *Core) journalDelete(ns, id string) error {
	return c.journal(recDelete, walDelete{NS: ns, ID: id})
}

// lockForRelease enters the session's durable release critical section; the
// returned unlock is nil on in-memory cores (nothing to serialize).
func (c *Core) lockForRelease(e *sessionEntry) func() {
	if c.persist == nil {
		return nil
	}
	e.relMu.Lock()
	return e.relMu.Unlock
}

// journalRelease records a successful ad-hoc release. Call with the
// session's release lock held (lockForRelease). A journal error is
// reported to the client as a failed release; the in-memory charge stands,
// so privacy loss is never under-counted.
func (c *Core) journalRelease(e *sessionEntry, kind, datasetID string, eps float64, fanout int) error {
	if c.persist == nil {
		return nil
	}
	e.ordinal++
	return c.journal(recRelease, walRelease{
		SessionID: e.id,
		Ordinal:   e.ordinal,
		Kind:      kind,
		DatasetID: datasetID,
		Epsilon:   eps,
		Fanout:    fanout,
	})
}

// eventJournal is the table's write-ahead hook: it runs under the table
// lock, in the same critical section that applies the batch.
func (c *Core) eventJournal(datasetID string) func(uint64, []blowfish.StreamMutation) error {
	return func(firstSeq uint64, muts []blowfish.StreamMutation) error {
		rec := walEvents{DatasetID: datasetID, First: firstSeq, Muts: make([]walMut, len(muts))}
		for i, m := range muts {
			rec.Muts[i] = walMut{O: uint8(m.Op), I: m.Index, P: m.P}
		}
		return c.journal(recEvents, rec)
	}
}

// epochJournal is the stream's write-ahead hook: it runs under the
// stream's epoch lock, after the epoch's releases are charged and before
// they publish.
func (c *Core) epochJournal(streamID string) func(int) error {
	return func(epoch int) error {
		return c.journal(recEpoch, walEpoch{StreamID: streamID, Epoch: epoch})
	}
}

// CheckpointStats reports a completed checkpoint.
type CheckpointStats struct {
	LSN        uint64 `json:"lsn"`
	Bytes      int    `json:"bytes"`
	DurationMS int64  `json:"duration_ms"`
	Path       string `json:"path"`
}

// Checkpoint snapshots the whole core and retires the covered WAL
// prefix. Safe to call at any time on a durable core; checkpoints
// single-flight. On an in-memory core it reports ErrNotDurable. See the
// consistency model at the top of this file.
func (c *Core) Checkpoint() (CheckpointStats, error) {
	p := c.persist
	if p == nil {
		return CheckpointStats{}, ErrNotDurable
	}
	p.cpMu.Lock()
	defer p.cpMu.Unlock()
	start := time.Now()
	startLSN := p.log.LastLSN()

	snap, err := c.buildSnapshot()
	if err != nil {
		return CheckpointStats{}, err
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return CheckpointStats{}, fmt.Errorf("service: encoding snapshot: %w", err)
	}
	path, err := wal.WriteSnapshot(p.cfg.Dir, startLSN, payload)
	if err != nil {
		return CheckpointStats{}, err
	}
	if err := p.log.Checkpoint(startLSN); err != nil {
		return CheckpointStats{}, err
	}
	p.resetCount()
	c.metrics.snapshotSeconds.ObserveSince(start)
	c.metrics.snapshotBytes.Set(int64(len(payload)))
	c.metrics.checkpoints.Inc()
	c.logger.Info("checkpoint complete",
		"lsn", startLSN, "bytes", len(payload), "elapsed", time.Since(start))
	return CheckpointStats{
		LSN:        startLSN,
		Bytes:      len(payload),
		DurationMS: time.Since(start).Milliseconds(),
		Path:       path,
	}, nil
}

// buildSnapshot serializes every registry. Each entry is exported under
// its own consistency lock; the registry itself is copied under the
// core's read lock first.
//
//lint:allow truthflow snapshots journal the raw dataset tuples by design: the durable state IS the data, and the data directory is server-private, never a release surface
func (c *Core) buildSnapshot() (*snapServer, error) {
	c.mu.RLock()
	snap := &snapServer{NextID: c.nextID, NextSeed: c.nextSeed.Load()}
	policies := make([]*policyEntry, 0, len(c.policies))
	for _, e := range c.policies {
		policies = append(policies, e)
	}
	datasets := make([]*datasetEntry, 0, len(c.datasets))
	for _, e := range c.datasets {
		datasets = append(datasets, e)
	}
	sessions := make([]*sessionEntry, 0, len(c.sessions))
	for _, e := range c.sessions {
		sessions = append(sessions, e)
	}
	streams := make([]*streamEntry, 0, len(c.streams))
	for _, e := range c.streams {
		streams = append(streams, e)
	}
	c.mu.RUnlock()
	sort.Slice(policies, func(i, j int) bool { return byID(policies[i].id, policies[j].id) < 0 })
	sort.Slice(datasets, func(i, j int) bool { return byID(datasets[i].id, datasets[j].id) < 0 })
	sort.Slice(sessions, func(i, j int) bool { return byID(sessions[i].id, sessions[j].id) < 0 })
	sort.Slice(streams, func(i, j int) bool { return byID(streams[i].id, streams[j].id) < 0 })

	for _, e := range policies {
		snap.Policies = append(snap.Policies, snapPolicy{ID: e.id, Domain: e.attrs, Graph: e.graph})
	}
	for _, e := range datasets {
		pts, st := e.tbl.Snapshot()
		snap.Datasets = append(snap.Datasets, snapDataset{ID: e.id, Domain: e.attrs, Points: pts, Table: st})
	}
	for _, e := range sessions {
		e.relMu.Lock()
		st, err := e.sess.ExportState()
		ord := e.ordinal
		e.relMu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("service: exporting session %s: %w", e.id, err)
		}
		snap.Sessions = append(snap.Sessions, snapSession{
			ID: e.id, PolicyID: e.policyID,
			Budget: e.sess.Accountant().Budget(),
			Seed:   e.seed, Shards: e.shards, Ordinal: ord, State: st,
		})
	}
	for _, e := range streams {
		var sessState blowfish.SessionState
		// Stream.Snapshot runs the export under the epoch lock, so the
		// stream cursor and the session's ledger/noise state are captured
		// between closes, never mid-close.
		stState, err := e.st.Snapshot(func() error {
			var err error
			sessState, err = e.sess.ExportState()
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("service: exporting stream %s: %w", e.id, err)
		}
		snap.Streams = append(snap.Streams, snapStream{
			ID: e.id, Req: e.req, Seed: e.seed, Shards: e.shards,
			State: stState, Session: sessState,
		})
	}
	return snap, nil
}

// bumpCounter advances a registry id counter past a replayed id, so ids
// minted after recovery never collide with pre-crash ones.
func bumpCounter(ctr *uint64, id string) {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return
	}
	n, err := strconv.ParseUint(id[i+1:], 10, 64)
	if err != nil {
		return
	}
	if n > *ctr {
		*ctr = n
	}
}

// CounterFromID parses the numeric suffix of a prefix-counter resource id
// ("sess-42" → 42, 0 when the id has no numeric suffix). The shard router
// seeds its namespace counters from recovered ids with it.
func CounterFromID(id string) uint64 {
	var ctr uint64
	bumpCounter(&ctr, id)
	return ctr
}

// raiseSeed advances the core's seed counter past a replayed value.
func (c *Core) raiseSeed(v int64) {
	for {
		cur := c.nextSeed.Load()
		if v <= cur || c.nextSeed.CompareAndSwap(cur, v) {
			return
		}
	}
}
