package service

// Recovery: boot a durable core from its data directory. The latest
// valid snapshot is loaded first (registries, budget ledgers, noise-stream
// positions, ingest cursors, release buffers), then the WAL tail is
// replayed in LSN order. Replay re-executes operations through the same
// library paths the live core used — an ingest batch goes through the
// table, an epoch close through Stream.CloseEpoch, an ad-hoc release
// through the session — so the recomputed noisy releases and charges are
// bit-for-bit what the pre-crash core produced (given its deterministic,
// single-shard seeded mode) and the accountants end up refusing exactly
// the releases the pre-crash core would have refused.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"blowfish"
	"blowfish/internal/wal"
)

// Open creates a Core, recovering durable state from
// Config.Durability.Dir when one is configured. With an empty Dir it is
// exactly New: the zero-config in-memory core.
func Open(cfg Config) (*Core, error) {
	c := New(cfg)
	d := cfg.Durability
	if d.Dir == "" {
		return c, nil
	}
	if d.Fsync == "" {
		d.Fsync = "always"
	}
	fsync, err := wal.ParseFsyncPolicy(d.Fsync)
	if err != nil {
		return nil, err
	}
	recoverStart := time.Now()
	c.logger.Info("recovery started", "dir", d.Dir, "fsync", d.Fsync)
	log, err := wal.Open(d.Dir, wal.Options{
		Fsync: fsync, FsyncInterval: d.FsyncInterval, Metrics: c.metrics.wal,
	})
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Core, error) {
		log.Close()
		return nil, err
	}
	snapLSN, payload, err := wal.LatestSnapshot(d.Dir)
	if err != nil {
		return fail(err)
	}
	if payload != nil {
		phase := time.Now()
		if err := c.loadSnapshot(payload); err != nil {
			return fail(fmt.Errorf("service: loading snapshot: %w", err))
		}
		c.logger.Info("snapshot loaded", "lsn", snapLSN,
			"bytes", len(payload), "elapsed", time.Since(phase))
	}
	phase := time.Now()
	if err := log.Replay(snapLSN, c.replayRecord); err != nil {
		return fail(fmt.Errorf("service: replaying wal: %w", err))
	}
	c.logger.Info("wal replayed", "from_lsn", snapLSN, "elapsed", time.Since(phase))
	c.persist = newPersistence(log, d)
	c.finishRecovery()
	go c.autoCheckpointLoop()
	c.logger.Info("recovery complete",
		"policies", len(c.policies), "datasets", len(c.datasets),
		"sessions", len(c.sessions), "streams", len(c.streams),
		"elapsed", time.Since(recoverStart))
	return c, nil
}

// finishRecovery attaches the write-ahead hooks to every recovered entry
// and starts the stream tickers. It runs after replay so replayed
// operations never re-journal themselves.
func (c *Core) finishRecovery() {
	for _, e := range c.datasets {
		e.tbl.SetJournal(c.eventJournal(e.id))
		e.ingCfg.StartSeq = e.tbl.LastSeq()
	}
	for _, e := range c.streams {
		e.st.SetJournal(c.epochJournal(e.id))
	}
	for _, e := range c.streams {
		e.st.Start()
	}
}

// loadSnapshot rebuilds the registries from a checkpoint payload.
//
//lint:allow waljournal recovery populates the registries FROM durable state; journaling the rebuild would append a duplicate record for every row already in the snapshot
func (c *Core) loadSnapshot(payload []byte) error {
	snap, err := decodeSnapshot(payload)
	if err != nil {
		return err
	}
	c.nextID = snap.NextID
	c.nextSeed.Store(snap.NextSeed)
	for _, p := range snap.Policies {
		pe, err := buildPolicyEntry(p.Domain, p.Graph)
		if err != nil {
			return fmt.Errorf("policy %s: %w", p.ID, err)
		}
		pe.id = p.ID
		c.policies[pe.id] = pe
	}
	for _, d := range snap.Datasets {
		de, err := c.buildDatasetEntry(d.Domain, d.Points)
		if err != nil {
			return fmt.Errorf("dataset %s: %w", d.ID, err)
		}
		de.id = d.ID
		if err := de.tbl.RestoreState(d.Table); err != nil {
			return fmt.Errorf("dataset %s: %w", d.ID, err)
		}
		c.datasets[de.id] = de
	}
	for _, sn := range snap.Sessions {
		pe, ok := c.policies[sn.PolicyID]
		if !ok {
			return fmt.Errorf("session %s references unknown policy %s", sn.ID, sn.PolicyID)
		}
		se, err := c.buildSessionEntry(pe, sn.Budget, sn.Seed, sn.Shards)
		if err != nil {
			return fmt.Errorf("session %s: %w", sn.ID, err)
		}
		se.id = sn.ID
		se.ordinal = sn.Ordinal
		if err := se.sess.RestoreState(sn.State); err != nil {
			return fmt.Errorf("session %s: %w", sn.ID, err)
		}
		c.sessions[se.id] = se
	}
	for _, sn := range snap.Streams {
		e, err := c.buildStreamEntryLocked(sn.Req, sn.Seed, sn.Shards)
		if err != nil {
			return fmt.Errorf("stream %s: %w", sn.ID, err)
		}
		e.id = sn.ID
		if err := e.st.RestoreState(sn.State); err != nil {
			return fmt.Errorf("stream %s: %w", sn.ID, err)
		}
		if err := e.sess.RestoreState(sn.Session); err != nil {
			return fmt.Errorf("stream %s: %w", sn.ID, err)
		}
		c.streams[e.id] = e
	}
	return nil
}

// replayRecord applies one WAL record. Every record carries a replay
// cursor (id, sequence number, epoch or ordinal) compared against the
// recovered state, so records the snapshot already reflects apply exactly
// zero times.
//
//lint:allow waljournal replay applies records read FROM the journal; re-journaling them would double every record on each recovery
func (c *Core) replayRecord(rec wal.Record) error {
	wrap := func(err error) error {
		if err != nil {
			return fmt.Errorf("lsn %d: %w", rec.LSN, err)
		}
		return nil
	}
	switch rec.Kind {
	case recPolicyPut:
		var r walPolicyPut
		if err := decodeRecord(rec.Data, &r); err != nil {
			return wrap(err)
		}
		bumpCounter(&c.nextID[0], r.ID)
		if _, ok := c.policies[r.ID]; ok {
			return nil // already in the snapshot
		}
		pe, err := buildPolicyEntry(r.Domain, r.Graph)
		if err != nil {
			return wrap(err)
		}
		pe.id = r.ID
		c.policies[pe.id] = pe
	case recDatasetPut:
		var r walDatasetPut
		if err := decodeRecord(rec.Data, &r); err != nil {
			return wrap(err)
		}
		bumpCounter(&c.nextID[1], r.ID)
		if _, ok := c.datasets[r.ID]; ok {
			return nil
		}
		de, err := c.buildDatasetEntry(r.Domain, r.Points)
		if err != nil {
			return wrap(err)
		}
		de.id = r.ID
		c.datasets[de.id] = de
	case recSessionPut:
		var r walSessionPut
		if err := decodeRecord(rec.Data, &r); err != nil {
			return wrap(err)
		}
		bumpCounter(&c.nextID[2], r.ID)
		c.raiseSeed(r.NextSeed)
		if _, ok := c.sessions[r.ID]; ok {
			return nil
		}
		pe, ok := c.policies[r.PolicyID]
		if !ok {
			return wrap(fmt.Errorf("session %s references unknown policy %s", r.ID, r.PolicyID))
		}
		se, err := c.buildSessionEntry(pe, r.Budget, r.Seed, r.Shards)
		if err != nil {
			return wrap(err)
		}
		se.id = r.ID
		c.sessions[se.id] = se
	case recStreamPut:
		var r walStreamPut
		if err := decodeRecord(rec.Data, &r); err != nil {
			return wrap(err)
		}
		bumpCounter(&c.nextID[3], r.ID)
		c.raiseSeed(r.NextSeed)
		if _, ok := c.streams[r.ID]; ok {
			return nil
		}
		e, err := c.buildStreamEntryLocked(r.Req, r.Seed, r.Shards)
		if err != nil {
			return wrap(err)
		}
		e.id = r.ID
		c.streams[e.id] = e
	case recDelete:
		var r walDelete
		if err := decodeRecord(rec.Data, &r); err != nil {
			return wrap(err)
		}
		c.replayDelete(r)
	case recEvents:
		var r walEvents
		if err := decodeRecord(rec.Data, &r); err != nil {
			return wrap(err)
		}
		return wrap(c.replayEvents(r))
	case recRelease:
		var r walRelease
		if err := decodeRecord(rec.Data, &r); err != nil {
			return wrap(err)
		}
		return wrap(c.replayRelease(r))
	case recEpoch:
		var r walEpoch
		if err := decodeRecord(rec.Data, &r); err != nil {
			return wrap(err)
		}
		return wrap(c.replayEpoch(r))
	default:
		return wrap(fmt.Errorf("unknown wal record kind %d", rec.Kind))
	}
	return nil
}

// replayDelete applies a WAL delete record to the matching registry.
//
//lint:allow waljournal replay applies deletes read FROM the journal; the delete record being applied is already durable
func (c *Core) replayDelete(r walDelete) {
	switch r.NS {
	case nsPolicy:
		delete(c.policies, r.ID)
	case nsDataset:
		e, ok := c.datasets[r.ID]
		delete(c.datasets, r.ID)
		if ok {
			e.closeIngestor()
			for _, pe := range c.policies {
				pe.cp.Forget(e.ds)
			}
		}
	case nsSession:
		delete(c.sessions, r.ID)
	case nsStream:
		e, ok := c.streams[r.ID]
		delete(c.streams, r.ID)
		if ok {
			e.st.Stop()
			e.st.Unbind()
		}
	}
}

// replayEvents re-applies an ingest batch, skipping the prefix the
// snapshot's sequence cursor already covers. A batch for a dataset that
// is gone is dropped: a concurrent delete raced the ingest drain, so the
// delete record landed first — the end state has no dataset either way.
func (c *Core) replayEvents(r walEvents) error {
	e, ok := c.datasets[r.DatasetID]
	if !ok {
		return nil
	}
	last := r.First + uint64(len(r.Muts)) - 1
	cursor := e.tbl.LastSeq()
	if last <= cursor {
		return nil // fully covered by the snapshot
	}
	muts := r.Muts
	first := r.First
	if first <= cursor {
		muts = muts[cursor-first+1:]
		first = cursor + 1
	}
	batch := make([]blowfish.StreamMutation, len(muts))
	for i, m := range muts {
		batch[i] = blowfish.StreamMutation{Op: blowfish.StreamMutOp(m.O), Index: m.I, P: m.P}
	}
	// Rejections replay identically (the dataset is in the same state the
	// live writer saw), so a poison event is skipped now as it was then.
	_, _, _ = e.tbl.ApplyLogged(first, batch)
	return nil
}

// replayRelease re-executes an ad-hoc session release: same mechanism,
// same dataset state (WAL order), same noise stream position, so the
// accountant charge and the noise consumption land exactly as they did
// pre-crash. Records at or below the snapshot's ordinal are skipped.
//
//lint:allow waljournal re-execution of a release whose WAL record is the thing being replayed; journaling it again would duplicate the record
func (c *Core) replayRelease(r walRelease) error {
	e, ok := c.sessions[r.SessionID]
	if !ok {
		return nil // session since deleted (delete record raced the release)
	}
	if r.Ordinal <= e.ordinal {
		return nil
	}
	ds, ephemeral := (*blowfish.Dataset)(nil), false
	if de, ok := c.datasets[r.DatasetID]; ok {
		ds = de.ds
	} else {
		// The dataset's delete record raced ahead of this release in the
		// log. The charge and the noise consumption must still be
		// reconstructed — both depend only on the policy domain (the
		// noise vector length is |T|, never n) — so re-execute against an
		// empty stand-in over the same domain. The values are discarded;
		// the accountant and the noise stream land exactly where the
		// pre-crash core left them.
		ds = blowfish.NewDataset(e.pol.pol.Domain())
		ephemeral = true
	}
	var err error
	switch r.Kind {
	case "histogram":
		if e.pol.part != nil {
			_, err = e.sess.ReleasePartitionHistogram(ds, e.pol.part, r.Epsilon)
		} else {
			_, err = e.sess.ReleaseHistogram(ds, r.Epsilon)
		}
	case "cumulative":
		_, err = e.sess.ReleaseCumulativeHistogram(ds, r.Epsilon)
	case "range":
		_, err = e.sess.NewRangeReleaser(ds, r.Fanout, r.Epsilon)
	default:
		return fmt.Errorf("unknown release kind %q", r.Kind)
	}
	if ephemeral {
		e.sess.Forget(ds)
	}
	if err != nil {
		return fmt.Errorf("re-executing %s release on session %s: %w", r.Kind, r.SessionID, err)
	}
	e.ordinal = r.Ordinal
	return nil
}

// replayEpoch re-executes a stream's epoch close. Closes the snapshot
// already reflects are skipped; a gap means the directory is inconsistent
// and recovery fails loudly rather than silently diverging.
func (c *Core) replayEpoch(r walEpoch) error {
	e, ok := c.streams[r.StreamID]
	if !ok {
		// The stream's delete record raced ahead of this close. Its
		// accountant died with it (streams have dedicated sessions), so
		// there is no surviving state to reconstruct.
		return nil
	}
	cur := e.st.ExportState().Epoch
	if r.Epoch < cur {
		return nil
	}
	if r.Epoch > cur {
		return fmt.Errorf("stream %s: wal closes epoch %d but recovered state is at epoch %d", r.StreamID, r.Epoch, cur)
	}
	if _, err := e.st.CloseEpoch(); err != nil {
		return fmt.Errorf("re-executing epoch %d close on stream %s: %w", r.Epoch, r.StreamID, err)
	}
	return nil
}

// --- shared entry builders -------------------------------------------------
//
// The front-end create paths and the recovery paths construct entries
// through the same builders, so a replayed create can never diverge from
// the original.

// buildPolicyEntry compiles a policy from its wire-level declaration.
func buildPolicyEntry(attrs []AttrSpec, graph GraphSpec) (*policyEntry, error) {
	dom, err := buildDomain(attrs)
	if err != nil {
		return nil, err
	}
	g, part, err := buildGraph(dom, graph)
	if err != nil {
		return nil, err
	}
	pol := blowfish.NewPolicy(g)
	cp, err := blowfish.Compile(pol)
	if err != nil {
		return nil, err
	}
	sens, err := cp.HistogramSensitivity()
	if err != nil {
		return nil, err
	}
	edges, components, _ := cp.ExplicitStats()
	return &policyEntry{
		pol:        pol,
		cp:         cp,
		attrs:      append([]AttrSpec(nil), attrs...),
		graph:      graph,
		part:       part,
		histSens:   sens,
		edges:      edges,
		components: components,
	}, nil
}

// buildDatasetEntry constructs a dataset entry from encoded points.
func (c *Core) buildDatasetEntry(attrs []AttrSpec, pts []blowfish.Point) (*datasetEntry, error) {
	dom, err := buildDomain(attrs)
	if err != nil {
		return nil, err
	}
	ds := blowfish.NewDataset(dom)
	for i, p := range pts {
		if err := ds.Add(p); err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
	}
	tbl, err := blowfish.NewStreamTable(ds)
	if err != nil {
		return nil, err
	}
	return &datasetEntry{ds: ds, attrs: append([]AttrSpec(nil), attrs...), tbl: tbl, ingCfg: c.cfg.Ingest}, nil
}

// buildSessionEntry mints a session over a registered policy with a pinned
// noise seed and shard count, wiring the engine's per-policy release
// instruments (resolved once here, never per release).
func (c *Core) buildSessionEntry(pe *policyEntry, budget float64, seed int64, shards int) (*sessionEntry, error) {
	sess, err := pe.cp.NewSessionShards(budget, blowfish.NewSource(seed), shards)
	if err != nil {
		return nil, err
	}
	sess.SetEngineMetrics(c.metrics.engineMetrics(pe.id))
	e := &sessionEntry{policyID: pe.id, pol: pe, sess: sess, seed: seed, shards: shards}
	e.lastUsed.Store(c.cfg.Now().UnixNano())
	return e, nil
}

// resolveSeed pins the noise construction for a create request: explicit
// client seeds run on a single shard (host-independent determinism),
// server-derived seeds shard per CPU for parallel release throughput.
func (c *Core) resolveSeed(reqSeed *int64) (seed int64, shards int) {
	seed = c.nextSeed.Add(1)
	shards = runtime.GOMAXPROCS(0)
	if reqSeed != nil {
		seed = *reqSeed
		shards = 1
	}
	return seed, shards
}

// streamConfigFromRequest lowers the wire-level stream spec.
func streamConfigFromRequest(req CreateStreamRequest) blowfish.StreamConfig {
	kinds := make([]blowfish.StreamReleaseKind, len(req.Kinds))
	for i, k := range req.Kinds {
		kinds[i] = blowfish.StreamReleaseKind(k)
	}
	queries := make([]blowfish.StreamRangeQuery, len(req.RangeQueries))
	for i, q := range req.RangeQueries {
		queries[i] = blowfish.StreamRangeQuery{Lo: q.Lo, Hi: q.Hi}
	}
	return blowfish.StreamConfig{
		Window:       blowfish.StreamWindow(req.Window.Kind),
		WindowEpochs: req.Window.Epochs,
		Interval:     time.Duration(req.Epoch.IntervalMS) * time.Millisecond,
		Epsilon:      req.Epoch.Epsilon,
		Decay:        req.Epoch.Decay,
		Epsilons:     req.Epoch.Epsilons,
		Kinds:        kinds,
		Fanout:       req.Fanout,
		RangeQueries: queries,
		MaxReleases:  req.MaxReleases,
	}
}

// buildStreamEntryLocked constructs a stream entry from its creation
// request, resolving the policy and dataset from the registries without
// taking the core lock — recovery (single-threaded) owns the maps, and
// the serving path resolves entries itself before calling the shared core.
func (c *Core) buildStreamEntryLocked(req CreateStreamRequest, seed int64, shards int) (*streamEntry, error) {
	pe, ok := c.policies[req.PolicyID]
	if !ok {
		return nil, fmt.Errorf("unknown policy %s", req.PolicyID)
	}
	de, ok := c.datasets[req.DatasetID]
	if !ok {
		return nil, fmt.Errorf("unknown dataset %s", req.DatasetID)
	}
	return c.buildStreamEntry(pe, de, req, seed, shards)
}

// buildStreamEntry binds a policy and dataset into a stream with a pinned
// seed; the stream is NOT started (callers start it after registration —
// recovery only after the whole replay).
func (c *Core) buildStreamEntry(pe *policyEntry, de *datasetEntry, req CreateStreamRequest, seed int64, shards int) (*streamEntry, error) {
	sess, err := pe.cp.NewSessionShards(req.Budget, blowfish.NewSource(seed), shards)
	if err != nil {
		return nil, err
	}
	sess.SetEngineMetrics(c.metrics.engineMetrics(pe.id))
	cfg := streamConfigFromRequest(req)
	cfg.Logger = c.logger.With("policy", pe.id, "dataset", de.id)
	st, err := sess.NewStream(de.tbl, cfg)
	if err != nil {
		return nil, err
	}
	return &streamEntry{
		policyID:  pe.id,
		datasetID: de.id,
		pol:       pe,
		de:        de,
		sess:      sess,
		st:        st,
		req:       req,
		seed:      seed,
		shards:    shards,
	}, nil
}

// decodeRecord unmarshals a WAL payload.
func decodeRecord(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("decoding wal payload: %w", err)
	}
	return nil
}

// decodeSnapshot unmarshals a checkpoint payload.
func decodeSnapshot(payload []byte) (*snapServer, error) {
	var snap snapServer
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}
