// Package service is the transport-agnostic core of the blowfish
// policy-release server: the four resource registries (policies,
// datasets, sessions, streams), the write-ahead journal and snapshot
// machinery, crash recovery, and the resource lifecycle — everything
// internal/server's HTTP handlers used to own directly, minus HTTP.
//
// A Core speaks requests and responses (the wire types in wire.go) and
// reports failures as *Error values carrying the structured error codes
// clients branch on; the HTTP front (internal/server) does nothing but
// decode, delegate and encode. The split exists so a Core can sit behind
// any front — the HTTP mux, the in-process shard router
// (internal/shard), a future gRPC or replication front — without the
// registry logic knowing which.
//
// Every policy is compiled once at registration (blowfish.Compile): its
// sensitivities, partition block index and range-tree layout are reused by
// every session, and dataset count vectors are indexed on first release and
// shared across the policy's sessions, so repeated releases never rescan
// the uploaded rows.
//
// The core is safe under full concurrency: registries are guarded by a
// read-write mutex, every session's engine draws noise from a sharded pool
// (one stream per CPU) so parallel releases do not serialize on a source
// mutex, and budget charges are atomic — parallel release requests against
// one session can never overspend its ε (sequential composition, Theorem
// 4.1).
package service

import (
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blowfish"
)

// Config tunes a Core. The zero value is usable.
type Config struct {
	// Seed is the base seed per-session noise sources are derived from.
	// Two cores with the same seed, the same request sequence and
	// explicit session seeds produce identical releases.
	Seed int64
	// SessionTTL expires sessions idle for longer than this; zero means
	// sessions never expire.
	SessionTTL time.Duration
	// MaxBodyBytes caps request bodies; defaults to 32 MiB. The core never
	// reads request bodies itself — the limit is carried here so fronts
	// built over the core inherit one consistent default.
	MaxBodyBytes int64
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
	// Ingest tunes the per-dataset event ingestors (batch size, flush
	// interval, queue depth). Zero values take the library defaults.
	Ingest blowfish.StreamIngestConfig
	// MaxEventsPerRequest caps one events batch; defaults to 100k.
	MaxEventsPerRequest int
	// MaxLongPollWait caps the wait_ms long-poll parameter of the stream
	// releases endpoint; defaults to 30s.
	MaxLongPollWait time.Duration
	// Durability enables the write-ahead log and snapshots. The zero value
	// (empty Dir) keeps the core fully in-memory — the zero-config
	// default every test and benchmark runs on.
	Durability DurabilityConfig
	// Logger receives structured events (recovery phases, epoch closes,
	// shutdown drains). Nil discards them.
	Logger *slog.Logger
	// CloseDrainTimeout bounds how long Close waits for stream tickers and
	// ingest writers to exit after signaling them; defaults to 10s.
	// Goroutines still alive at the deadline are logged and counted in the
	// blowfish_close_leaked_goroutines gauge instead of blocking shutdown
	// forever.
	CloseDrainTimeout time.Duration
	// ShardLabel, when non-empty, is stamped onto every metric family of
	// this core's registry as a constant shard="<label>" label, so the
	// merged exposition of a sharded deployment keeps per-shard series
	// distinct. Empty (the single-core default) adds nothing — the
	// exposition stays byte-identical to the pre-shard layout.
	ShardLabel string
}

const (
	defaultMaxEventsPerRequest = 100_000
	defaultMaxLongPollWait     = 30 * time.Second
	defaultCloseDrainTimeout   = 10 * time.Second
)

const defaultMaxBodyBytes = 32 << 20

// Core is the in-memory policy-release service. Create with New (or Open
// for a durable core recovered from disk).
type Core struct {
	cfg     Config
	metrics *coreMetrics
	logger  *slog.Logger

	mu       sync.RWMutex
	policies map[string]*policyEntry
	datasets map[string]*datasetEntry
	sessions map[string]*sessionEntry
	streams  map[string]*streamEntry
	nextID   [4]uint64 // policy, dataset, session, stream counters
	closed   bool

	nextSeed atomic.Int64

	// persist is nil for in-memory cores; when set, every state-changing
	// operation is journaled to the write-ahead log before it is
	// acknowledged, and Checkpoint snapshots the registries. See persist.go
	// and recover.go.
	persist *persistence
}

type policyEntry struct {
	id    string
	pol   *blowfish.Policy
	attrs []AttrSpec
	// graph is the wire-level secret-graph spec the policy was registered
	// with, kept so snapshots and WAL replay can rebuild the compiled plan
	// from the client's own declaration.
	graph GraphSpec
	// cp is the policy compiled into the release engine's plan at
	// registration: every session minted from it shares the precomputed
	// sensitivities, tree layouts and dataset indexes.
	cp *blowfish.CompiledPolicy
	// part is non-nil for partition policies; histogram releases over such
	// policies answer the block histogram h_P.
	part blowfish.Partition
	// histSens is S(h, P), computed once at registration.
	histSens float64
	// edges and components describe the compiled structure of explicit
	// secret graphs (zero for implicit kinds).
	edges, components int
}

type datasetEntry struct {
	id    string
	ds    *blowfish.Dataset
	attrs []AttrSpec
	// tbl coordinates streaming writers (event batches, window expiry)
	// against release readers: every release over ds runs under its read
	// lock, every mutation under its write lock.
	tbl *blowfish.StreamTable
	// ing is the dataset's single-writer event log, started lazily on the
	// first events batch (an upload-once dataset costs no goroutine) and
	// stopped on dataset deletion / core Close.
	ingOnce    sync.Once
	ing        *blowfish.StreamIngestor
	ingErr     error
	ingStarted atomic.Bool
	ingCfg     blowfish.StreamIngestConfig
}

// ingestor returns the dataset's event-log writer, starting it on first use.
func (e *datasetEntry) ingestor() (*blowfish.StreamIngestor, error) {
	e.ingOnce.Do(func() {
		e.ing, e.ingErr = blowfish.NewStreamIngestor(e.tbl, e.ingCfg)
		if e.ingErr == nil {
			e.ingStarted.Store(true)
		}
	})
	return e.ing, e.ingErr
}

// startedIngestor returns the writer only if one is already running —
// flush paths use it so they never spawn a goroutine just to drain an
// event log that was never opened.
func (e *datasetEntry) startedIngestor() *blowfish.StreamIngestor {
	if !e.ingStarted.Load() {
		return nil
	}
	return e.ing
}

// closeIngestor stops the event-log goroutine if it was ever started, and
// pins the never-started case to an error so a late events batch cannot
// spawn a writer the shutdown already missed.
func (e *datasetEntry) closeIngestor() {
	if done := e.shutdownIngestor(); done != nil {
		<-done
	}
}

// shutdownIngestor is the non-blocking half of closeIngestor: it pins the
// never-started case, signals a running writer to drain, and returns the
// channel that closes when the writer has exited (nil if none ever ran).
func (e *datasetEntry) shutdownIngestor() <-chan struct{} {
	e.ingOnce.Do(func() { e.ingErr = errShuttingDown })
	if e.ing == nil {
		return nil
	}
	return e.ing.Shutdown()
}

var errShuttingDown = fmt.Errorf("server is shutting down")

type streamEntry struct {
	id        string
	policyID  string
	datasetID string
	pol       *policyEntry
	de        *datasetEntry
	// sess is the dedicated session backing the stream's budget schedule;
	// its accountant is what epoch closes charge.
	sess *blowfish.Session
	st   *blowfish.Stream
	// req is the creation request with the noise seed/shard resolution
	// pinned, so snapshots and WAL replay rebuild an identical stream.
	req    CreateStreamRequest
	seed   int64
	shards int
}

type sessionEntry struct {
	id       string
	policyID string
	// pol is the policy entry captured at session creation: releases use
	// this reference rather than re-resolving policyID, so a policy
	// deletion racing session creation can never change which mechanism a
	// live session's releases go through.
	pol  *policyEntry
	sess *blowfish.Session
	// lastUsed is the unix-nano timestamp of the latest access, advanced
	// atomically so reads can stay under the core's read lock.
	lastUsed atomic.Int64
	// seed and shards pin the noise construction for snapshots and replay.
	seed   int64
	shards int
	// relMu serializes this session's releases on the durable path: a
	// release and its WAL record form one critical section, so a
	// checkpoint (which takes the same lock to export the ledger, the
	// noise state and the ordinal together) can never observe one without
	// the other. In-memory cores never take it.
	relMu sync.Mutex
	// ordinal counts journaled releases; guarded by relMu. WAL replay
	// skips release records with ordinal <= the snapshot's.
	ordinal uint64
}

// New creates an in-memory Core.
func New(cfg Config) *Core {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.MaxEventsPerRequest <= 0 {
		cfg.MaxEventsPerRequest = defaultMaxEventsPerRequest
	}
	if cfg.MaxLongPollWait <= 0 {
		cfg.MaxLongPollWait = defaultMaxLongPollWait
	}
	if cfg.CloseDrainTimeout <= 0 {
		cfg.CloseDrainTimeout = defaultCloseDrainTimeout
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	c := &Core{
		cfg:      cfg,
		metrics:  newCoreMetrics(cfg.ShardLabel),
		logger:   logger,
		policies: make(map[string]*policyEntry),
		datasets: make(map[string]*datasetEntry),
		sessions: make(map[string]*sessionEntry),
		streams:  make(map[string]*streamEntry),
	}
	// The shared ingest instruments flow into every dataset's writer via
	// the base ingest config.
	c.cfg.Ingest.Metrics = c.metrics.ingest
	c.nextSeed.Store(cfg.Seed)
	c.registerCollectors()
	return c
}

// Config returns the core's configuration with defaults applied, so
// fronts can inherit the effective limits (body caps, long-poll caps)
// without duplicating the defaulting rules.
func (c *Core) Config() Config { return c.cfg }

// newID mints the next identifier in one of the four namespaces.
func (c *Core) newID(kind int, prefix string) string {
	c.nextID[kind]++
	return fmt.Sprintf("%s-%d", prefix, c.nextID[kind])
}

// ExpireSessions drops sessions idle past the configured TTL and returns
// how many were removed. Call it periodically (cmd/blowfish-serve runs a
// sweeper goroutine); a zero TTL makes it a no-op.
func (c *Core) ExpireSessions() int {
	if c.cfg.SessionTTL <= 0 {
		return 0
	}
	cutoff := c.cfg.Now().Add(-c.cfg.SessionTTL).UnixNano()
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for id, e := range c.sessions {
		if e.lastUsed.Load() < cutoff {
			// Best-effort journal: if the WAL is down (failures are
			// sticky), expire in memory anyway — holding every idle
			// session forever would leak without bound. A restart may
			// resurrect the session from the snapshot, where the next
			// sweep expires it again; its ledger survives either way, so
			// budget accounting is unaffected.
			_ = c.journalDelete(nsSession, id)
			delete(c.sessions, id)
			n++
		}
	}
	return n
}

// SessionCount returns the number of live sessions (diagnostics).
func (c *Core) SessionCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.sessions)
}

// StreamCount returns the number of live streams (diagnostics).
func (c *Core) StreamCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.streams)
}

// Close stops every background goroutine the core owns: stream epoch
// tickers and per-dataset event-log writers (flushing their queues). On a
// durable core the shutdown then checkpoints: the ingest queues are fully
// drained *before* the final snapshot is taken, so every acknowledged event
// is in it — a graceful shutdown loses nothing, and the next boot recovers
// from the snapshot alone with no WAL tail to replay. A failed final
// snapshot is safe (the WAL still holds every record; recovery just
// replays more). It is idempotent; stream and dataset creation after Close
// is refused. In-flight requests are the front's to drain
// (http.Server.Shutdown does).
func (c *Core) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	streams := make([]*streamEntry, 0, len(c.streams))
	for _, e := range c.streams {
		streams = append(streams, e)
	}
	datasets := make([]*datasetEntry, 0, len(c.datasets))
	for _, e := range c.datasets {
		datasets = append(datasets, e)
	}
	c.mu.Unlock()
	// Drain in ID order: Ingestor.Close journals queued events, so the
	// shutdown tail of the WAL gets a reproducible cross-dataset order
	// instead of whatever the map iteration produced.
	sort.Slice(streams, func(i, j int) bool { return byID(streams[i].id, streams[j].id) < 0 })
	sort.Slice(datasets, func(i, j int) bool { return byID(datasets[i].id, datasets[j].id) < 0 })
	start := time.Now()
	// One drain deadline covers the whole shutdown: a wedged ticker or
	// writer is logged and counted instead of blocking Close forever.
	expired := make(chan struct{})
	watchdog := time.AfterFunc(c.cfg.CloseDrainTimeout, func() { close(expired) })
	defer watchdog.Stop()
	leaked := 0
	waitOne := func(what, id string, done <-chan struct{}) {
		select {
		case <-done:
			return
		default:
		}
		select {
		case <-done:
		case <-expired:
			leaked++
			c.logger.Error("close drain timed out; goroutine still running",
				"what", what, "id", id, "timeout", c.cfg.CloseDrainTimeout)
		}
	}
	// Stop schedulers first so no epoch close races the ingestor drain:
	// signal every ticker at once, then wait for each under the deadline.
	stops := make([]<-chan struct{}, len(streams))
	for i, e := range streams {
		stops[i] = e.st.Shutdown()
	}
	for i, e := range streams {
		waitOne("stream ticker", e.id, stops[i])
	}
	// Drain every event queue: the writer applies (and therefore journals)
	// everything submitted before exiting. Signal-then-wait serially, per
	// dataset, to keep the WAL tail's cross-dataset order reproducible.
	for _, e := range datasets {
		if done := e.shutdownIngestor(); done != nil {
			waitOne("ingest writer", e.id, done)
		}
	}
	c.metrics.closeLeaked.Set(int64(leaked))
	if c.persist != nil {
		c.persist.stopAutoCheckpoint()
		_, _ = c.Checkpoint() // best-effort: the WAL remains authoritative
		_ = c.persist.log.Close()
	}
	if leaked > 0 {
		c.logger.Error("core close left goroutines running",
			"leaked", leaked, "elapsed", time.Since(start))
		return
	}
	c.logger.Info("core closed",
		"streams", len(streams), "datasets", len(datasets), "elapsed", time.Since(start))
}

// CloseLeaked reports how many stream-ticker / ingest-writer goroutines
// the last Close abandoned at its drain deadline (0 after a clean close).
// Tests and the leak watchdog assert on it.
func (c *Core) CloseLeaked() int {
	return int(c.metrics.closeLeaked.Value())
}

// refuseClosed reports resource creation on a closed (shutting down) core
// as the structured shutdown error.
func (c *Core) refuseClosed() error {
	c.mu.RLock()
	closed := c.closed
	c.mu.RUnlock()
	if closed {
		return &Error{Code: CodeBadRequest, Message: "server is shutting down"}
	}
	return nil
}

// byID orders resource ids of one namespace ("pol-2" < "pol-10") for the
// list endpoints: shorter ids first, then lexicographic — numeric order for
// the core's prefix-counter ids.
func byID(a, b string) int {
	if len(a) != len(b) {
		return len(a) - len(b)
	}
	return strings.Compare(a, b)
}

// CompareIDs exposes the id ordering to fronts that merge lists from
// several cores (the shard router's scatter-gather list endpoints).
func CompareIDs(a, b string) int { return byID(a, b) }

// snapshotSorted copies one registry under the core's read lock and
// orders the entries by id — the shared skeleton of every list endpoint.
func snapshotSorted[E any](c *Core, m map[string]E, id func(E) string) []E {
	c.mu.RLock()
	out := make([]E, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return byID(id(out[i]), id(out[j])) < 0 })
	return out
}

// getSession looks a session up and refreshes its idle timer.
func (c *Core) getSession(id string) (*sessionEntry, bool) {
	c.mu.RLock()
	e, ok := c.sessions[id]
	c.mu.RUnlock()
	if !ok {
		return nil, false
	}
	e.lastUsed.Store(c.cfg.Now().UnixNano())
	return e, true
}

func (c *Core) getPolicy(id string) (*policyEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.policies[id]
	return e, ok
}

func (c *Core) getDataset(id string) (*datasetEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.datasets[id]
	return e, ok
}

func (c *Core) getStream(id string) (*streamEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.streams[id]
	return e, ok
}

// buildDomain validates an AttrSpec list into a Domain.
func buildDomain(attrs []AttrSpec) (*blowfish.Domain, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("domain needs at least one attribute")
	}
	out := make([]blowfish.Attribute, len(attrs))
	for i, a := range attrs {
		out[i] = blowfish.Attribute{Name: a.Name, Size: a.Size}
	}
	return blowfish.NewDomain(out...)
}

// buildGraph constructs the secret graph named by spec, returning the
// partition alongside for kind "partition".
func buildGraph(dom *blowfish.Domain, spec GraphSpec) (blowfish.SecretGraph, blowfish.Partition, error) {
	return blowfish.BuildGraph(dom, spec)
}
