package service

// Streaming API: event ingest, continual-release streams, epoch closes
// and the release-cursor poll. The HTTP front owns the body encodings
// (JSON envelope, NDJSON, binary batch frame); by the time a batch
// reaches the core it is a []blowfish.StreamEvent. Submitted events may
// alias a front's pooled decode scratch: TrySubmit copies them into
// mutations before returning and IngestEvents is synchronous, so the
// front may recycle the scratch as soon as the call returns.

import (
	"context"
	"errors"
	"time"

	"blowfish"
)

// IngestEvents appends a batch of events to the dataset's event log.
// Events are sequence-numbered and applied by the dataset's single
// writer; the response carries the assigned range and the writer's
// cursor. The ingest queue is bounded: a batch that does not fit whole is
// rejected with the structured queue_full error, never parked on the
// caller (explicit backpressure). With wait set, the call blocks until
// every submitted event has been applied or rejected (read-your-writes).
func (c *Core) IngestEvents(ctx context.Context, datasetID string, events []blowfish.StreamEvent, wait bool) (EventsResponse, error) {
	de, ok := c.getDataset(datasetID)
	if !ok {
		return EventsResponse{}, errf(CodeUnknownDataset, "no dataset %q", datasetID)
	}
	if len(events) == 0 {
		return EventsResponse{}, errf(CodeBadRequest, "events batch is empty")
	}
	if len(events) > c.cfg.MaxEventsPerRequest {
		return EventsResponse{}, errf(CodeBadRequest, "%d events exceed the per-request cap %d", len(events), c.cfg.MaxEventsPerRequest)
	}
	ing, err := de.ingestor()
	if err != nil {
		return EventsResponse{}, badRequest(err)
	}
	first, last, err := ing.TrySubmit(events)
	if err != nil {
		var qf *blowfish.StreamQueueFullError
		if errors.As(err, &qf) {
			c.metrics.queueFull.Inc()
			return EventsResponse{}, &Error{Code: CodeQueueFull, Message: qf.Error()}
		}
		return EventsResponse{}, badRequest(err)
	}
	if wait {
		if err := ing.WaitProcessed(ctx, last); err != nil {
			return EventsResponse{}, errf(CodeBadRequest, "waiting for apply: %v", err)
		}
	}
	stats := ing.Stats()
	return EventsResponse{
		Accepted:     len(events),
		FirstSeq:     first,
		LastSeq:      last,
		ProcessedSeq: stats.Processed,
		Rejected:     stats.Rejected,
		LastError:    stats.LastError,
	}, nil
}

// CreateStream binds a dataset and a policy into a continual-release
// stream, minting its id: a dedicated budgeted session backs the epsilon
// schedule, the dataset's table is indexed through the policy's compiled
// plan, and (when an interval is configured) an epoch ticker starts.
func (c *Core) CreateStream(req CreateStreamRequest) (StreamResponse, error) {
	return c.putStream("", req)
}

// ApplyStream creates a stream under an explicit id (shard router).
func (c *Core) ApplyStream(id string, req CreateStreamRequest) (StreamResponse, error) {
	if id == "" {
		return StreamResponse{}, errf(CodeBadRequest, "apply needs an explicit id")
	}
	return c.putStream(id, req)
}

func (c *Core) putStream(id string, req CreateStreamRequest) (StreamResponse, error) {
	if err := c.refuseClosed(); err != nil {
		return StreamResponse{}, err
	}
	pe, ok := c.getPolicy(req.PolicyID)
	if !ok {
		return StreamResponse{}, errf(CodeUnknownPolicy, "no policy %q", req.PolicyID)
	}
	de, ok := c.getDataset(req.DatasetID)
	if !ok {
		return StreamResponse{}, errf(CodeUnknownDataset, "no dataset %q", req.DatasetID)
	}
	// Same seeding contract as sessions: explicit seeds pin one noise shard
	// so the stream replays identically on any host.
	seed, shards := c.resolveSeed(req.Seed)
	e, err := c.buildStreamEntry(pe, de, req, seed, shards)
	if err != nil {
		return StreamResponse{}, libError(err)
	}
	st := e.st
	// rollback undoes the side effects New applied to the shared table when
	// the registration below is refused.
	rollback := func() {
		st.Stop()
		st.Unbind()
	}
	c.mu.Lock()
	// Re-check the referenced resources under the write lock that inserts
	// the stream, so a racing policy/dataset deletion cannot strand it.
	if c.closed {
		c.mu.Unlock()
		rollback()
		return StreamResponse{}, errf(CodeBadRequest, "server is shutting down")
	}
	if _, still := c.policies[pe.id]; !still {
		c.mu.Unlock()
		rollback()
		return StreamResponse{}, errf(CodeUnknownPolicy, "no policy %q", req.PolicyID)
	}
	if _, still := c.datasets[de.id]; !still {
		c.mu.Unlock()
		rollback()
		return StreamResponse{}, errf(CodeUnknownDataset, "no dataset %q", req.DatasetID)
	}
	// Windowed (tumbling/sliding) streams mutate shared table state at
	// each close — dataset resets, epoch tags — so a dataset carrying one
	// admits no other stream, in either direction. Cumulative streams
	// coexist freely.
	newWin := st.Config().Window
	for _, other := range c.streams {
		if other.datasetID != de.id {
			continue
		}
		otherWin := other.st.Config().Window
		if newWin != blowfish.WindowCumulative || otherWin != blowfish.WindowCumulative {
			c.mu.Unlock()
			rollback()
			return StreamResponse{}, errf(CodeDatasetInUse,
				"dataset %q already has stream %q (window %q); windowed streams need the dataset to themselves",
				de.id, other.id, otherWin)
		}
	}
	if id == "" {
		id = c.newID(3, "stream")
	} else {
		bumpCounter(&c.nextID[3], id)
		if _, dup := c.streams[id]; dup {
			c.mu.Unlock()
			rollback()
			return StreamResponse{}, errf(CodeBadRequest, "stream %q already exists", id)
		}
	}
	e.id = id
	if err := c.journal(recStreamPut, walStreamPut{
		ID: e.id, Req: req, Seed: seed, Shards: shards, NextSeed: c.nextSeed.Load(),
	}); err != nil {
		c.mu.Unlock()
		rollback()
		return StreamResponse{}, durabilityErr(err)
	}
	if c.persist != nil {
		// Install the epoch journal before the stream is reachable (and
		// before Start), so no close can ever precede its stream's own
		// creation record in the log.
		st.SetJournal(c.epochJournal(e.id))
	}
	c.streams[e.id] = e
	c.mu.Unlock()
	st.Start()
	return streamResponse(e), nil
}

func streamResponse(e *streamEntry) StreamResponse {
	acct := e.sess.Accountant()
	status := e.st.Status()
	cfg := e.st.Config()
	kinds := make([]string, len(cfg.Kinds))
	for i, k := range cfg.Kinds {
		kinds[i] = string(k)
	}
	return StreamResponse{
		ID:          e.id,
		PolicyID:    e.policyID,
		DatasetID:   e.datasetID,
		Budget:      acct.Budget(),
		Spent:       acct.Spent(),
		Remaining:   acct.Remaining(),
		Window:      string(cfg.Window),
		Kinds:       kinds,
		Epoch:       status.Epoch,
		NextEpsilon: status.NextEpsilon,
		Exhausted:   status.Exhausted,
		FirstSeq:    status.FirstSeq,
		LastSeq:     status.LastSeq,
		Rows:        status.N,
		Events:      status.Events,
	}
}

// streamFor resolves a stream id, reporting the structured unknown-stream
// error on miss.
func (c *Core) streamFor(id string) (*streamEntry, error) {
	e, ok := c.getStream(id)
	if !ok {
		return nil, errf(CodeUnknownStream, "no stream %q", id)
	}
	return e, nil
}

// GetStream describes a stream and its progress.
func (c *Core) GetStream(id string) (StreamResponse, error) {
	e, err := c.streamFor(id)
	if err != nil {
		return StreamResponse{}, err
	}
	return streamResponse(e), nil
}

// ListStreams enumerates live streams in id order.
func (c *Core) ListStreams() ListStreamsResponse {
	entries := snapshotSorted(c, c.streams, func(e *streamEntry) string { return e.id })
	resp := ListStreamsResponse{Streams: make([]StreamResponse, len(entries))}
	for i, e := range entries {
		resp.Streams[i] = streamResponse(e)
	}
	return resp
}

// DeleteStream stops and unregisters a stream.
func (c *Core) DeleteStream(id string) error {
	c.mu.Lock()
	e, ok := c.streams[id]
	if ok {
		if err := c.journalDelete(nsStream, id); err != nil {
			c.mu.Unlock()
			return durabilityErr(err)
		}
	}
	delete(c.streams, id)
	c.mu.Unlock()
	if !ok {
		return errf(CodeUnknownStream, "no stream %q", id)
	}
	e.st.Stop()
	// Detach the stream's index so ingestion on the surviving dataset stops
	// maintaining count vectors nobody will read.
	e.st.Unbind()
	return nil
}

// CloseEpoch closes the stream's current epoch on demand — the
// deterministic trigger (automatic interval-driven closes are configured
// at stream creation). The dataset's event queue is flushed first so the
// epoch covers everything submitted before the call.
func (c *Core) CloseEpoch(ctx context.Context, id string) (EpochReleaseWire, error) {
	e, err := c.streamFor(id)
	if err != nil {
		return EpochReleaseWire{}, err
	}
	if ing := e.de.startedIngestor(); ing != nil {
		if err := ing.Flush(ctx); err != nil {
			return EpochReleaseWire{}, errf(CodeBadRequest, "flushing event queue: %v", err)
		}
	}
	rel, err := e.st.CloseEpoch()
	if err != nil {
		return EpochReleaseWire{}, libError(err)
	}
	return releaseWire(rel), nil
}

func releaseWire(rel *blowfish.EpochRelease) EpochReleaseWire {
	return EpochReleaseWire{
		Seq:                rel.Seq,
		Epoch:              rel.Epoch,
		Events:             rel.Events,
		Rows:               rel.N,
		Epsilon:            rel.Epsilon,
		Remaining:          rel.Remaining,
		Histogram:          rel.Histogram,
		CumulativeRaw:      rel.CumulativeRaw,
		CumulativeInferred: rel.CumulativeInferred,
		RangeAnswers:       rel.RangeAnswers,
	}
}

// StreamReleases answers a cursor poll over the stream's published
// releases. With wait > 0 and nothing past the cursor, the call long-
// polls until a release arrives or the wait elapses (an empty list). The
// wait is clamped to the configured MaxLongPollWait. A poll — waiting or
// not — that lands past the last release of an exhausted stream gets the
// structured budget_exhausted error: nothing will ever arrive, so pollers
// know to stop.
func (c *Core) StreamReleases(ctx context.Context, id string, since uint64, wait time.Duration) (StreamReleasesResponse, error) {
	e, err := c.streamFor(id)
	if err != nil {
		return StreamReleasesResponse{}, err
	}
	if wait > c.cfg.MaxLongPollWait {
		wait = c.cfg.MaxLongPollWait
	}
	rels := e.st.Releases(since)
	if len(rels) == 0 && wait > 0 {
		wctx, cancel := context.WithTimeout(ctx, wait)
		waited, err := e.st.WaitReleases(wctx, since)
		cancel()
		switch {
		case err == nil:
			rels = waited
		case errors.Is(err, context.DeadlineExceeded):
			// Wait elapsed: answer the empty list, the poller retries.
		case errors.Is(err, blowfish.ErrStreamStopped):
			// The stream (or server) is shutting down: a clean empty
			// response, not an error — the poller's next request resolves
			// the stream's fate.
		case errors.Is(err, blowfish.ErrBudgetExceeded):
			return StreamReleasesResponse{}, libError(err)
		default:
			return StreamReleasesResponse{}, badRequest(err)
		}
	}
	if len(rels) == 0 && e.st.Status().Exhausted {
		// Past the last release of an exhausted stream nothing will ever
		// arrive — the terminal budget_exhausted signal must reach plain
		// polls too, not only the long-poll branch above, or a non-waiting
		// poller loops on empty 200s forever.
		return StreamReleasesResponse{}, libError(blowfish.ErrBudgetExceeded)
	}
	resp := StreamReleasesResponse{Releases: make([]EpochReleaseWire, len(rels)), NextSince: since}
	for i, rel := range rels {
		resp.Releases[i] = releaseWire(rel)
		resp.NextSince = rel.Seq
	}
	return resp, nil
}
