package service

// Wire types: the request and response bodies of the v1 API. Every
// response that costs privacy budget echoes the session's remaining budget
// so clients can pace themselves without an extra round trip. They live in
// the service package (not the HTTP front) because they are what a Core
// speaks: every front — HTTP, the shard router — exchanges exactly these.

import "blowfish"

// AttrSpec declares one categorical attribute of a domain.
type AttrSpec struct {
	Name string `json:"name"`
	Size int    `json:"size"`
}

// GraphSpec declares the secret graph of a policy over the declared
// domain: one of the paper's standard specifications by name, an arbitrary
// edge list, or a composition of specs.
//
// Kinds:
//
//	full      — S^full, the complete graph (ε-differential privacy)
//	attr      — S^attr, per-attribute secrets
//	line      — G^{d,1}, the line graph over a 1-D ordered domain
//	l1        — S^{d,θ} under the L1 metric; requires Theta
//	linf      — S^{d,θ} under the L∞ metric; requires Theta
//	partition — S^P over a uniform grid partition; requires Blocks or Widths
//	explicit  — arbitrary adjacency given by Edges
//	compose   — Op ("union", "intersect" or "product") over Graphs
//
// The spec is journaled verbatim in the core's write-ahead log and
// snapshots, and recovery rebuilds the identical compiled plan from it.
// The wire type IS the library's serializable spec (see blowfish.GraphSpec
// for the field reference: Theta for l1/linf, Blocks/Widths for partition,
// Edges — pairs of rows, the dataset row encoding — for explicit,
// Op/Graphs for compose), so a journaled spec can never drift from what
// the create request declared.
type GraphSpec = blowfish.GraphSpec

// CreatePolicyRequest declares a domain and a secret-graph specification.
type CreatePolicyRequest struct {
	Domain []AttrSpec `json:"domain"`
	Graph  GraphSpec  `json:"graph"`
}

// PolicyResponse describes a registered policy.
type PolicyResponse struct {
	ID         string     `json:"id"`
	Name       string     `json:"name"`
	Domain     []AttrSpec `json:"domain"`
	DomainSize int64      `json:"domain_size"`
	// HistogramSensitivity is S(h, P), the noise driver for histogram
	// releases (Theorem 5.1).
	HistogramSensitivity float64 `json:"histogram_sensitivity"`
	// Edges and Components describe the compiled structure of explicit
	// (edge-list or composed) secret graphs; both are omitted for implicit
	// kinds, whose structure is analytic. Components is >= 1 for every
	// explicit graph (a domain has at least one vertex), so its presence is
	// the reliable explicit-backed marker; Edges may be legitimately absent
	// at zero (e.g. an empty intersection).
	Edges      int `json:"edges,omitempty"`
	Components int `json:"components,omitempty"`
}

// CreateDatasetRequest uploads a dataset as integer rows, one tuple per
// row, over either an inline domain or the domain of a registered policy.
type CreateDatasetRequest struct {
	// PolicyID borrows the domain of a registered policy; mutually
	// exclusive with Domain.
	PolicyID string     `json:"policy_id,omitempty"`
	Domain   []AttrSpec `json:"domain,omitempty"`
	Rows     [][]int    `json:"rows"`
}

// DatasetResponse describes a registered dataset.
type DatasetResponse struct {
	ID     string     `json:"id"`
	Rows   int        `json:"rows"`
	Domain []AttrSpec `json:"domain"`
}

// CreateSessionRequest opens a budgeted release session against a policy.
type CreateSessionRequest struct {
	PolicyID string  `json:"policy_id"`
	Budget   float64 `json:"budget"`
	// Seed optionally fixes the session's noise stream for reproducible
	// runs: a seeded session uses a single noise shard so the same seed
	// and request sequence replay identically on any host. Omitted, the
	// server derives a fresh per-session seed and shards the noise pool
	// per CPU for parallel release throughput.
	Seed *int64 `json:"seed,omitempty"`
	// DatasetID is an optional placement hint for sharded deployments:
	// the session is colocated with the named dataset's shard, so its
	// releases over that dataset route without a cross-shard hop. A
	// single-core server ignores it (every resource is local anyway).
	DatasetID string `json:"dataset_id,omitempty"`
}

// ReleaseRecord is one entry of a session's budget ledger.
type ReleaseRecord struct {
	Label   string  `json:"label"`
	Epsilon float64 `json:"epsilon"`
}

// SessionResponse describes a session and its budget ledger.
type SessionResponse struct {
	ID        string          `json:"id"`
	PolicyID  string          `json:"policy_id"`
	Budget    float64         `json:"budget"`
	Spent     float64         `json:"spent"`
	Remaining float64         `json:"remaining"`
	Releases  []ReleaseRecord `json:"releases,omitempty"`
}

// HistogramRequest draws a complete (or partition-block) histogram release.
type HistogramRequest struct {
	DatasetID string  `json:"dataset_id"`
	Epsilon   float64 `json:"epsilon"`
}

// HistogramResponse carries the noisy counts.
type HistogramResponse struct {
	Counts    []float64 `json:"counts"`
	Remaining float64   `json:"remaining"`
}

// CumulativeRequest draws an Ordered Mechanism cumulative histogram.
type CumulativeRequest struct {
	DatasetID string  `json:"dataset_id"`
	Epsilon   float64 `json:"epsilon"`
}

// CumulativeResponse carries the raw noisy cumulative counts and the
// constrained-inference estimate (monotone, clamped to [0, n]).
type CumulativeResponse struct {
	Raw       []float64 `json:"raw"`
	Inferred  []float64 `json:"inferred"`
	Remaining float64   `json:"remaining"`
}

// RangeQuery is one inclusive range count query q[lo, hi].
type RangeQuery struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// RangeRequest builds one Ordered Hierarchical release (charging Epsilon
// once) and answers every query against it.
type RangeRequest struct {
	DatasetID string  `json:"dataset_id"`
	Epsilon   float64 `json:"epsilon"`
	// Fanout is the hierarchy branching factor; defaults to 16.
	Fanout  int          `json:"fanout,omitempty"`
	Queries []RangeQuery `json:"queries"`
}

// RangeResponse carries one answer per query, in request order.
type RangeResponse struct {
	Answers   []float64 `json:"answers"`
	Remaining float64   `json:"remaining"`
}

// ListPoliciesResponse enumerates registered policies, id order.
type ListPoliciesResponse struct {
	Policies []PolicyResponse `json:"policies"`
}

// ListDatasetsResponse enumerates registered datasets, id order.
type ListDatasetsResponse struct {
	Datasets []DatasetResponse `json:"datasets"`
}

// ListSessionsResponse enumerates live sessions, id order.
type ListSessionsResponse struct {
	Sessions []SessionResponse `json:"sessions"`
}

// ListStreamsResponse enumerates live streams, id order.
type ListStreamsResponse struct {
	Streams []StreamResponse `json:"streams"`
}

// EventWire is one streamed mutation. Op is "append" (Row required),
// "upsert" (ID + Row) or "delete" (ID). Tuple ids are dataset indexes;
// deletes recycle the last id into the removed slot (Dataset.Remove swap
// semantics).
type EventWire struct {
	Op  string `json:"op"`
	ID  int    `json:"id,omitempty"`
	Row []int  `json:"row,omitempty"`
}

// EventsRequest submits a batch of events to a dataset's event log. The
// same endpoint accepts NDJSON (Content-Type application/x-ndjson): one
// EventWire object per line, no envelope.
type EventsRequest struct {
	Events []EventWire `json:"events"`
	// Wait, when true, blocks the response until every submitted event has
	// been applied (or rejected) by the writer — the read-your-writes mode
	// tests and walkthroughs use.
	Wait bool `json:"wait,omitempty"`
}

// EventsResponse acknowledges a batch: sequence numbers assigned, plus the
// ingestor's cursor and rejection counters at response time.
type EventsResponse struct {
	Accepted     int    `json:"accepted"`
	FirstSeq     uint64 `json:"first_seq,omitempty"`
	LastSeq      uint64 `json:"last_seq,omitempty"`
	ProcessedSeq uint64 `json:"processed_seq"`
	Rejected     uint64 `json:"rejected"`
	LastError    string `json:"last_error,omitempty"`
}

// EpochSpec is a stream's per-epoch epsilon schedule and cadence.
type EpochSpec struct {
	// Epsilon is the per-epoch, per-kind ε (epoch e costs
	// epsilon·decay^e·|kinds| of the budget).
	Epsilon float64 `json:"epsilon"`
	// Decay multiplies the epsilon each epoch; 0 means 1 (constant).
	Decay float64 `json:"decay,omitempty"`
	// Epsilons overrides the schedule for the first len(epsilons) epochs.
	Epsilons []float64 `json:"epsilons,omitempty"`
	// IntervalMS, when positive, closes epochs automatically every this
	// many milliseconds; 0 means epochs close only via POST .../epochs.
	IntervalMS int `json:"interval_ms,omitempty"`
}

// WindowSpec selects the stream's window semantics.
type WindowSpec struct {
	// Kind is "cumulative" (default), "tumbling" or "sliding".
	Kind string `json:"kind,omitempty"`
	// Epochs is the sliding-window width (required for kind "sliding").
	Epochs int `json:"epochs,omitempty"`
}

// CreateStreamRequest binds a dataset and a policy into a continual-release
// stream with a total ε budget.
type CreateStreamRequest struct {
	PolicyID  string  `json:"policy_id"`
	DatasetID string  `json:"dataset_id"`
	Budget    float64 `json:"budget"`
	// Seed optionally pins the stream's noise to a single reproducible
	// shard (same semantics as session seeds).
	Seed   *int64     `json:"seed,omitempty"`
	Epoch  EpochSpec  `json:"epoch"`
	Window WindowSpec `json:"window,omitempty"`
	// Kinds defaults to ["histogram"]; also "cumulative" and "range".
	Kinds []string `json:"kinds,omitempty"`
	// Fanout is the range-release hierarchy branching factor; default 16.
	Fanout int `json:"fanout,omitempty"`
	// RangeQueries are answered by each "range" release.
	RangeQueries []RangeQuery `json:"range_queries,omitempty"`
	// MaxReleases bounds the buffered releases (older ones are evicted);
	// default 1024.
	MaxReleases int `json:"max_releases,omitempty"`
}

// StreamResponse describes a stream and its progress.
type StreamResponse struct {
	ID        string   `json:"id"`
	PolicyID  string   `json:"policy_id"`
	DatasetID string   `json:"dataset_id"`
	Budget    float64  `json:"budget"`
	Spent     float64  `json:"spent"`
	Remaining float64  `json:"remaining"`
	Window    string   `json:"window"`
	Kinds     []string `json:"kinds"`
	// Epoch is the next epoch to close (== epochs closed so far).
	Epoch       int     `json:"epoch"`
	NextEpsilon float64 `json:"next_epsilon"`
	Exhausted   bool    `json:"exhausted"`
	// FirstSeq/LastSeq bound the buffered release cursors (0 when empty).
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	// Rows is the dataset cardinality now; Events the mutations applied.
	Rows   int    `json:"rows"`
	Events uint64 `json:"events"`
}

// EpochReleaseWire is one published epoch release.
type EpochReleaseWire struct {
	Seq                uint64    `json:"seq"`
	Epoch              int       `json:"epoch"`
	Events             uint64    `json:"events"`
	Rows               int       `json:"rows"`
	Epsilon            float64   `json:"epsilon"`
	Remaining          float64   `json:"remaining"`
	Histogram          []float64 `json:"histogram,omitempty"`
	CumulativeRaw      []float64 `json:"cumulative_raw,omitempty"`
	CumulativeInferred []float64 `json:"cumulative_inferred,omitempty"`
	RangeAnswers       []float64 `json:"range_answers,omitempty"`
}

// StreamReleasesResponse answers a releases poll: everything buffered past
// the `since` cursor, and the cursor to resume from.
type StreamReleasesResponse struct {
	Releases []EpochReleaseWire `json:"releases"`
	// NextSince is the cursor for the next poll (the last seq returned, or
	// the request's since when nothing new arrived).
	NextSince uint64 `json:"next_since"`
}
