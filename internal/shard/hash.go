// Package shard routes a single logical blowfish service across N
// in-process shard workers, each a full service.Core with its own
// registries, WAL segment directory and snapshot cycle. Datasets are the
// shard key — Blowfish policies compose per dataset, so a dataset's
// indexes, sessions, streams and journal records never span shards and
// each shard recovers independently. Policies are broadcast to every
// shard (they are small, immutable once compiled, and every shard needs
// them to build sessions); list endpoints scatter-gather.
package shard

// ShardFor places a resource id on one of n shards by rendezvous
// (highest-random-weight) hashing: every (id, shard) pair is scored and
// the highest score wins. Deterministic in the id alone — no ring state,
// nothing persisted — so the assignment survives restarts by
// construction, and growing n relocates only the ids whose new shard
// outscores every old one (1/(n+1) of them in expectation).
func ShardFor(id string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv1a(id)
	best, bestScore := 0, score(h, 0)
	for i := 1; i < n; i++ {
		if s := score(h, i); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// fnv1a hashes the id bytes (FNV-1a, 64-bit) without allocating.
func fnv1a(id string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h
}

// score combines the id hash with a shard index and avalanches the result
// (the splitmix64 finalizer). The full-width mix matters: scoring with a
// plain hash of id+digits leaves the per-shard scores correlated — they
// differ by a few low bits before one multiply — which skews the argmax
// and breaks the rendezvous relocation bound (TestShardForRelocation).
func score(idHash uint64, shard int) uint64 {
	x := idHash ^ (uint64(shard)+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
