package shard

import (
	"fmt"
	"testing"
)

// TestShardForDeterministic pins the property the durable layout depends
// on: the assignment is a pure function of (id, n). Nothing may perturb
// it between calls or processes.
func TestShardForDeterministic(t *testing.T) {
	for n := 1; n <= 9; n++ {
		for i := 0; i < 500; i++ {
			id := fmt.Sprintf("ds-%d", i)
			a, b := ShardFor(id, n), ShardFor(id, n)
			if a != b {
				t.Fatalf("ShardFor(%q, %d) unstable: %d then %d", id, n, a, b)
			}
			if a < 0 || a >= n {
				t.Fatalf("ShardFor(%q, %d) = %d out of range", id, n, a)
			}
		}
	}
	if got := ShardFor("anything", 1); got != 0 {
		t.Fatalf("single shard must absorb every id, got %d", got)
	}
	if got := ShardFor("anything", 0); got != 0 {
		t.Fatalf("degenerate n=0 must clamp to shard 0, got %d", got)
	}
}

// TestShardForDistribution checks the ids the router actually mints
// ("ds-1", "ds-2", ...) spread roughly evenly — a shard starved or
// overloaded by the hash would defeat the point of sharding.
func TestShardForDistribution(t *testing.T) {
	const n, ids = 8, 10000
	counts := make([]int, n)
	for i := 0; i < ids; i++ {
		counts[ShardFor(fmt.Sprintf("ds-%d", i), n)]++
	}
	want := ids / n
	for k, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("shard %d got %d of %d ids (expect ~%d): %v", k, c, ids, want, counts)
		}
	}
}

// TestShardForRelocation pins the rendezvous property: adding shard n
// moves an id only if the new shard outscores every old one, so every id
// either stays put or moves to the newest shard. A ring rebuild that
// shuffled ids between old shards would corrupt a grown deployment.
func TestShardForRelocation(t *testing.T) {
	const oldN = 4
	moved := 0
	for i := 0; i < 5000; i++ {
		id := fmt.Sprintf("ds-%d", i)
		before, after := ShardFor(id, oldN), ShardFor(id, oldN+1)
		if after != before && after != oldN {
			t.Fatalf("id %q moved %d -> %d when shard %d was added; rendezvous ids may only move to the new shard", id, before, after, oldN)
		}
		if after != before {
			moved++
		}
	}
	// Expectation is 1/(n+1) = 1000 of 5000; allow a wide band.
	if moved < 500 || moved > 1700 {
		t.Fatalf("%d of 5000 ids moved when growing %d -> %d shards, want ~1000", moved, oldN, oldN+1)
	}
}
