package shard

// Sharded crash-recovery: the single-core durability contract (see
// internal/server's recovery tests) must hold per shard, plus the
// router's own invariants — the routing tables and id counters are
// rebuilt purely from the shards' recovered registries, and a policy
// broadcast torn by the crash is repaired to the union.
//
// TestShardedCrashRecovery re-executes this test binary as a child
// process (TestMain) running a durable 4-shard HTTP server, drives it
// over HTTP, SIGKILLs it mid-ingest, and recovers the directory
// in-process. The CI sharded-recovery job runs it with -race.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"

	"blowfish/internal/server"
	"blowfish/internal/service"
)

const crashChildEnv = "BLOWFISH_SHARD_CRASH_CHILD_DIR"

const crashShards = 4

// TestMain turns the test binary into a durable sharded server when
// re-executed as the crash child: it serves until killed, never
// returning.
func TestMain(m *testing.M) {
	if dir := os.Getenv(crashChildEnv); dir != "" {
		runCrashChild(dir)
		return // unreachable: runCrashChild blocks until killed
	}
	os.Exit(m.Run())
}

// runCrashChild serves a 4-shard durable server on a random port, writing
// the address to <dir>/../addr for the parent, with the shard WALs under
// <dir>.
func runCrashChild(dir string) {
	r, err := Open(service.Config{
		Durability: service.DurabilityConfig{Dir: dir, Fsync: "always"},
	}, crashShards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shard crash child: %v\n", err)
		os.Exit(1)
	}
	srv := server.NewWith(r)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "shard crash child: %v\n", err)
		os.Exit(1)
	}
	addrFile := filepath.Join(filepath.Dir(dir), "addr")
	if err := os.WriteFile(addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "shard crash child: %v\n", err)
		os.Exit(1)
	}
	_ = http.Serve(ln, srv)
	select {} // hold until SIGKILL
}

// httpJSON posts (or gets) JSON against the child server.
func httpJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// TestShardedCrashRecovery is the sharded kill -9 harness: resources are
// spread over every shard, acked work must survive on all of them, and
// the rebuilt router must route every recovered id to the shard that
// holds it.
func TestShardedCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	root := t.TempDir()
	dir := filepath.Join(root, "data")

	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	}()

	addrFile := filepath.Join(root, "addr")
	var base string
	for i := 0; i < 200; i++ {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			base = "http://" + string(b)
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if base == "" {
		t.Fatal("shard crash child never published an address")
	}

	// --- drive the child over HTTP -----------------------------------
	var pol service.PolicyResponse
	httpJSON(t, "POST", base+"/v1/policies", testPolicy, &pol)
	if pol.ID == "" {
		t.Fatal("policy create returned no id")
	}

	// Enough datasets that every shard owns at least one (ds-1..ds-12
	// over 4 rendezvous shards; verified below, not assumed).
	const numDatasets = 12
	var datasets []service.DatasetResponse
	for i := 0; i < numDatasets; i++ {
		var ds service.DatasetResponse
		httpJSON(t, "POST", base+"/v1/datasets", service.CreateDatasetRequest{PolicyID: pol.ID}, &ds)
		datasets = append(datasets, ds)
	}
	owned := make(map[int]bool)
	for _, ds := range datasets {
		owned[ShardFor(ds.ID, crashShards)] = true
	}
	if len(owned) != crashShards {
		t.Fatalf("datasets cover %d of %d shards; grow numDatasets", len(owned), crashShards)
	}

	// One seeded stream per dataset; the first takes the mid-ingest
	// kill, the second is quiesced pre-kill and carries the bit-for-bit
	// release assertion.
	var streams []service.StreamResponse
	for i, ds := range datasets[:2] {
		var st service.StreamResponse
		httpJSON(t, "POST", base+"/v1/streams", service.CreateStreamRequest{
			PolicyID: pol.ID, DatasetID: ds.ID, Budget: 3.0, Seed: i64(int64(7 + i)),
			Epoch: service.EpochSpec{Epsilon: 0.5},
		}, &st)
		streams = append(streams, st)
	}

	ingest := func(dsID string, vals []int) service.EventsResponse {
		evs := make([]service.EventWire, len(vals))
		for i, v := range vals {
			evs[i] = service.EventWire{Op: "append", Row: []int{v}}
		}
		var out service.EventsResponse
		code := httpJSON(t, "POST", base+"/v1/datasets/"+dsID+"/events",
			service.EventsRequest{Events: evs, Wait: true}, &out)
		if code != http.StatusAccepted {
			t.Fatalf("ingest on %s: status %d", dsID, code)
		}
		return out
	}
	// Acked rows on every dataset: all must survive on whichever shard
	// owns them.
	acked := make(map[string]service.EventsResponse)
	rows := make(map[string]int)
	for i, ds := range datasets {
		vals := []int{i % 16, (i + 3) % 16, (i + 5) % 16}
		acked[ds.ID] = ingest(ds.ID, vals)
		rows[ds.ID] = len(vals)
	}

	closeEpoch := func(stID string) service.EpochReleaseWire {
		var rel service.EpochReleaseWire
		code := httpJSON(t, "POST", base+"/v1/streams/"+stID+"/epochs", nil, &rel)
		if code != http.StatusOK {
			t.Fatalf("epoch close on %s: status %d", stID, code)
		}
		return rel
	}
	acked0 := closeEpoch(streams[0].ID)
	acked1 := closeEpoch(streams[1].ID)

	// --- kill -9 mid-ingest ------------------------------------------
	// Hammer unacked batches across every dataset (so every shard has a
	// WAL tail in flight) and kill while they are mid-request.
	stop := make(chan struct{})
	stormDone := make(chan struct{})
	go func() {
		defer close(stormDone)
		cl := &http.Client{Timeout: 2 * time.Second}
		n := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := make([]service.EventWire, 10)
			for i := range evs {
				evs[i] = service.EventWire{Op: "append", Row: []int{(n + i) % 16}}
			}
			ds := datasets[n%len(datasets)]
			n++
			b, _ := json.Marshal(service.EventsRequest{Events: evs})
			resp, err := cl.Post(base+"/v1/datasets/"+ds.ID+"/events", "application/json", bytes.NewReader(b))
			if err != nil {
				return // child died mid-request: expected
			}
			resp.Body.Close()
		}
	}()
	time.Sleep(60 * time.Millisecond) // let the storm land mid-flight
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	killed = true
	_, _ = cmd.Process.Wait()
	close(stop)
	<-stormDone

	// --- recover in-process ------------------------------------------
	rec, err := Open(service.Config{
		Durability: service.DurabilityConfig{Dir: dir, Fsync: "always"},
	}, crashShards)
	if err != nil {
		t.Fatalf("sharded recovery: %v", err)
	}
	defer rec.Abandon()

	// Routing tables rebuilt: every dataset routes to the shard that
	// holds it, which is still ShardFor(id, n).
	for _, ds := range datasets {
		want := ShardFor(ds.ID, crashShards)
		if got := rec.ShardOf(ds.ID); got != want {
			t.Fatalf("dataset %s recovered onto shard %d, want %d", ds.ID, got, want)
		}
		if !rec.Core(want).HasDataset(ds.ID) {
			t.Fatalf("dataset %s missing from its shard %d after recovery", ds.ID, want)
		}
	}

	// The policy broadcast survived on every shard.
	for k := 0; k < crashShards; k++ {
		if !rec.Core(k).HasPolicy(pol.ID) {
			t.Fatalf("policy %s missing on shard %d after recovery", pol.ID, k)
		}
	}

	// No acked ingest event is lost, on any shard.
	for _, ds := range datasets {
		k := rec.ShardOf(ds.ID)
		core := rec.Core(k)
		if got := core.DatasetTable(ds.ID).LastSeq(); got < acked[ds.ID].LastSeq {
			t.Fatalf("dataset %s (shard %d) recovered seq %d < acked %d", ds.ID, k, got, acked[ds.ID].LastSeq)
		}
		if got := core.DatasetHandle(ds.ID).Len(); got < rows[ds.ID] {
			t.Fatalf("dataset %s (shard %d) recovered %d rows, want >= %d acked", ds.ID, k, got, rows[ds.ID])
		}
	}

	// Budget spend is monotone and the acked releases are in the
	// recovered buffers bit-for-bit.
	for i, st := range streams {
		k := rec.ShardOf(st.ID)
		if k < 0 {
			t.Fatalf("stream %s unrouted after recovery", st.ID)
		}
		stream, sess := rec.Core(k).StreamHandles(st.ID)
		if stream == nil {
			t.Fatalf("stream %s not recovered on shard %d", st.ID, k)
		}
		if got := sess.Accountant().Spent(); got != 0.5 {
			t.Fatalf("stream %s spent = %v after recovery, want 0.5 (one acked close)", st.ID, got)
		}
		want := []service.EpochReleaseWire{acked0, acked1}[i]
		got := stream.ExportState().Releases
		if len(got) != 1 {
			t.Fatalf("stream %s recovered %d releases, want 1", st.ID, len(got))
		}
		if got[0].Seq != want.Seq || got[0].Epoch != want.Epoch || !reflect.DeepEqual(got[0].Histogram, want.Histogram) {
			t.Fatalf("stream %s release diverges:\nrecovered %+v\nacked     %+v", st.ID, got[0], want)
		}
	}

	// The rebuilt id counters mint fresh ids past everything recovered.
	ds, err := rec.CreateDataset(service.CreateDatasetRequest{PolicyID: pol.ID})
	if err != nil {
		t.Fatalf("post-recovery create: %v", err)
	}
	for _, old := range datasets {
		if ds.ID == old.ID {
			t.Fatalf("post-recovery dataset reused id %s", ds.ID)
		}
	}
}

// TestOpenRejectsShrunkLayout: reopening a sharded directory with fewer
// shards than it holds must refuse rather than silently strand the
// datasets on the orphaned shards.
func TestOpenRejectsShrunkLayout(t *testing.T) {
	dir := t.TempDir()
	cfg := service.Config{Durability: service.DurabilityConfig{Dir: dir, Fsync: "always"}}
	r, err := Open(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if _, err := Open(cfg, 2); err == nil {
		t.Fatal("Open with 2 shards over a 3-shard directory succeeded; want a layout refusal")
	}
	// The original count still works, as does growing.
	for _, n := range []int{3, 5} {
		r, err := Open(cfg, n)
		if err != nil {
			t.Fatalf("reopen with %d shards: %v", n, err)
		}
		r.Close()
	}
}
