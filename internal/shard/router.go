package shard

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"blowfish"
	"blowfish/internal/metrics"
	"blowfish/internal/service"
)

// seedStride separates the shards' base seeds: shard i derives its noise
// and per-session seeds from cfg.Seed + i*seedStride (the 64-bit golden
// gamma, so consecutive shards land far apart in seed space). The stride
// is part of the on-disk contract — recovery re-derives the same per-shard
// seeds from the same base seed.
const seedStride int64 = -0x61C8864680B583EB // 0x9E3779B97F4A7C15 as int64

// Router is a service front over N shard cores. It implements the same
// Service surface a single core does; the HTTP front (server.NewWith)
// cannot tell them apart.
//
// Placement: datasets hash to a shard by rendezvous hashing of their id
// (ShardFor); streams live with their dataset; sessions live with the
// dataset named by their placement hint (falling back to hashing the
// session id); policies are broadcast to every shard. The router mints
// every id itself so the namespaces stay global — two shards can never
// hand out the same id.
type Router struct {
	cfg   service.Config
	cores []*service.Core

	// mu guards the id counters and the routing tables. Creates and
	// deletes hold the write lock across the core call so a policy
	// broadcast (which touches every core) cannot interleave with a
	// create that snapshots the policy set; routing lookups take the
	// read lock only.
	mu     sync.RWMutex
	nextID [4]uint64 // policy, dataset, session, stream counters
	// Routing tables, id -> shard index. Not registries and not
	// journaled: each shard's registries are the durable truth, and
	// rebuild() reconstructs these maps from them on every open.
	dsShard     map[string]int
	sessShard   map[string]int
	streamShard map[string]int
}

// interface check: the router must stay substitutable for a single core.
var _ interface {
	Config() service.Config
	Registries() []*metrics.Registry
} = (*Router)(nil)

// New creates an in-memory router over n cores.
func New(cfg service.Config, n int) (*Router, error) {
	return Open(cfg, n)
}

// Open creates a router over n cores, recovering each shard's durable
// state from its own subdirectory <cfg.Durability.Dir>/shard-<i> when a
// data directory is configured. The shard count is part of the on-disk
// layout: reopening with a different n would strand datasets on shards
// the hash no longer picks, so Open refuses a directory whose shard
// subdirectories contradict n.
func Open(cfg service.Config, n int) (*Router, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	if cfg.Durability.Dir != "" {
		if err := checkLayout(cfg.Durability.Dir, n); err != nil {
			return nil, err
		}
	}
	r := &Router{
		cfg:         cfg,
		cores:       make([]*service.Core, 0, n),
		dsShard:     make(map[string]int),
		sessShard:   make(map[string]int),
		streamShard: make(map[string]int),
	}
	for i := 0; i < n; i++ {
		sub := cfg
		sub.ShardLabel = strconv.Itoa(i)
		sub.Seed = cfg.Seed + int64(i)*seedStride
		if cfg.Durability.Dir != "" {
			sub.Durability.Dir = filepath.Join(cfg.Durability.Dir, "shard-"+strconv.Itoa(i))
		}
		core, err := service.Open(sub)
		if err != nil {
			for _, c := range r.cores {
				c.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		r.cores = append(r.cores, core)
	}
	// Expose the defaulted base configuration, not shard 0's private view.
	base := r.cores[0].Config()
	base.Durability.Dir = cfg.Durability.Dir
	base.ShardLabel = ""
	base.Seed = cfg.Seed
	r.cfg = base
	r.rebuild()
	return r, nil
}

// rebuild reconstructs the routing tables and id counters from the
// recovered cores, and repairs a torn policy broadcast (a crash between
// two shards' creation records) by re-applying missing policies from a
// shard that has them — policy registration is deterministic from its
// spec, so the repaired shard compiles the identical plan.
func (r *Router) rebuild() {
	for k, c := range r.cores {
		for _, id := range c.PolicyIDs() {
			bump(&r.nextID[0], id)
		}
		for _, id := range c.DatasetIDs() {
			r.dsShard[id] = k
			bump(&r.nextID[1], id)
		}
		for _, id := range c.SessionIDs() {
			r.sessShard[id] = k
			bump(&r.nextID[2], id)
		}
		for _, id := range c.StreamIDs() {
			r.streamShard[id] = k
			bump(&r.nextID[3], id)
		}
	}
	// Union of policy ids, with one shard that owns each.
	owners := make(map[string]int)
	for k, c := range r.cores {
		for _, id := range c.PolicyIDs() {
			if _, ok := owners[id]; !ok {
				owners[id] = k
			}
		}
	}
	for id, owner := range owners {
		spec, err := r.cores[owner].PolicySpec(id)
		if err != nil {
			continue
		}
		//lint:allow shardsafe torn-broadcast repair: re-applying the policy union is idempotent, so the repair loop IS the rollback
		for _, c := range r.cores {
			if !c.HasPolicy(id) {
				_, _ = c.ApplyPolicy(id, spec)
			}
		}
	}
}

func bump(ctr *uint64, id string) {
	if n := service.CounterFromID(id); n > *ctr {
		*ctr = n
	}
}

// checkLayout verifies an existing data directory agrees with the shard
// count: every shard-<i> subdirectory present must be i < n.
func checkLayout(dir string, n int) error {
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*"))
	if err != nil {
		return err
	}
	for _, m := range matches {
		var i int
		if _, err := fmt.Sscanf(filepath.Base(m), "shard-%d", &i); err != nil {
			continue
		}
		if i >= n {
			return fmt.Errorf("shard: data directory %s holds %s but only %d shard(s) configured; reopen with the original shard count", dir, filepath.Base(m), n)
		}
	}
	return nil
}

// Shards returns the number of shard cores.
func (r *Router) Shards() int { return len(r.cores) }

// ShardOf reports which shard currently owns a dataset, session or
// stream id (-1 when unknown). Diagnostics and tests.
func (r *Router) ShardOf(id string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if k, ok := r.dsShard[id]; ok {
		return k
	}
	if k, ok := r.sessShard[id]; ok {
		return k
	}
	if k, ok := r.streamShard[id]; ok {
		return k
	}
	return -1
}

// Core returns shard k's core (tests and the recovery harness).
//
//lint:allow shardsafe white-box accessor for tests and the recovery harness, which address shards directly by index
func (r *Router) Core(k int) *service.Core { return r.cores[k] }

// Config returns the (defaulted) base configuration.
func (r *Router) Config() service.Config { return r.cfg }

// mint reserves the next id in a namespace under the write lock already
// held by the caller.
func (r *Router) mint(kind int, prefix string) string {
	r.nextID[kind]++
	return prefix + "-" + strconv.FormatUint(r.nextID[kind], 10)
}

// route resolves an id through one routing table, falling back to shard 0
// on a miss so the core produces its own structured unknown-* error — the
// router never invents error messages of its own.
func (r *Router) route(m map[string]int, id string) *service.Core {
	r.mu.RLock()
	k, ok := m[id]
	r.mu.RUnlock()
	if !ok {
		return r.cores[0]
	}
	return r.cores[k]
}

// --- policies (broadcast) --------------------------------------------------

// CreatePolicy registers a policy on every shard under one id. The
// broadcast is sequential with rollback: if shard k refuses, the policy
// is removed from shards 0..k-1 and the create fails as a whole.
func (r *Router) CreatePolicy(req service.CreatePolicyRequest) (service.PolicyResponse, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.mint(0, "pol")
	var resp service.PolicyResponse
	for k, c := range r.cores {
		got, err := c.ApplyPolicy(id, req)
		if err != nil {
			for _, prev := range r.cores[:k] {
				_ = prev.DeletePolicy(id)
			}
			return service.PolicyResponse{}, err
		}
		if k == 0 {
			resp = got
		}
	}
	return resp, nil
}

func (r *Router) GetPolicy(id string) (service.PolicyResponse, error) {
	return r.cores[0].GetPolicy(id)
}

func (r *Router) ListPolicies() service.ListPoliciesResponse {
	return r.cores[0].ListPolicies()
}

// DeletePolicy removes a policy from every shard. Any shard may refuse
// (live sessions or streams reference it there); refused deletes restore
// the policy on the shards that already dropped it, so the broadcast
// stays all-or-nothing.
func (r *Router) DeletePolicy(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	spec, specErr := r.cores[0].PolicySpec(id)
	for k, c := range r.cores {
		if err := c.DeletePolicy(id); err != nil {
			if specErr == nil {
				for _, prev := range r.cores[:k] {
					_, _ = prev.ApplyPolicy(id, spec)
				}
			}
			return err
		}
	}
	return nil
}

// --- datasets (hashed) -----------------------------------------------------

func (r *Router) CreateDataset(req service.CreateDatasetRequest) (service.DatasetResponse, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.mint(1, "ds")
	k := ShardFor(id, len(r.cores))
	resp, err := r.cores[k].ApplyDataset(id, req)
	if err != nil {
		return service.DatasetResponse{}, err
	}
	r.dsShard[id] = k
	return resp, nil
}

func (r *Router) GetDataset(id string) (service.DatasetResponse, error) {
	return r.route(r.dsShard, id).GetDataset(id)
}

func (r *Router) ListDatasets() service.ListDatasetsResponse {
	out := service.ListDatasetsResponse{Datasets: []service.DatasetResponse{}}
	for _, c := range r.cores {
		out.Datasets = append(out.Datasets, c.ListDatasets().Datasets...)
	}
	sortByID(out.Datasets, func(d service.DatasetResponse) string { return d.ID })
	return out
}

func (r *Router) DeleteDataset(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.route(r.dsShard, id).DeleteDataset(id); err != nil {
		return err
	}
	delete(r.dsShard, id)
	return nil
}

func (r *Router) IngestEvents(ctx context.Context, datasetID string, events []blowfish.StreamEvent, wait bool) (service.EventsResponse, error) {
	return r.route(r.dsShard, datasetID).IngestEvents(ctx, datasetID, events, wait)
}

// --- sessions (colocated with their dataset) -------------------------------

func (r *Router) CreateSession(req service.CreateSessionRequest) (service.SessionResponse, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.mint(2, "sess")
	k, ok := r.dsShard[req.DatasetID]
	if !ok {
		// No placement hint (or an unknown dataset, which the release
		// path will report): hash the session's own id.
		k = ShardFor(id, len(r.cores))
	}
	resp, err := r.cores[k].ApplySession(id, req)
	if err != nil {
		return service.SessionResponse{}, err
	}
	r.sessShard[id] = k
	return resp, nil
}

func (r *Router) GetSession(id string) (service.SessionResponse, error) {
	return r.route(r.sessShard, id).GetSession(id)
}

func (r *Router) ListSessions() service.ListSessionsResponse {
	out := service.ListSessionsResponse{Sessions: []service.SessionResponse{}}
	for _, c := range r.cores {
		out.Sessions = append(out.Sessions, c.ListSessions().Sessions...)
	}
	sortByID(out.Sessions, func(s service.SessionResponse) string { return s.ID })
	return out
}

func (r *Router) DeleteSession(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.route(r.sessShard, id).DeleteSession(id); err != nil {
		return err
	}
	delete(r.sessShard, id)
	return nil
}

func (r *Router) Histogram(sessionID string, req service.HistogramRequest) (service.HistogramResponse, error) {
	return r.route(r.sessShard, sessionID).Histogram(sessionID, req)
}

func (r *Router) Cumulative(sessionID string, req service.CumulativeRequest) (service.CumulativeResponse, error) {
	return r.route(r.sessShard, sessionID).Cumulative(sessionID, req)
}

func (r *Router) Range(sessionID string, req service.RangeRequest) (service.RangeResponse, error) {
	return r.route(r.sessShard, sessionID).Range(sessionID, req)
}

// --- streams (colocated with their dataset) --------------------------------

func (r *Router) CreateStream(req service.CreateStreamRequest) (service.StreamResponse, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.mint(3, "stream")
	// A stream binds its dataset's table, so it must live on the
	// dataset's shard; an unknown dataset routes to shard 0 for the
	// structured error.
	k, ok := r.dsShard[req.DatasetID]
	if !ok {
		k = 0
	}
	resp, err := r.cores[k].ApplyStream(id, req)
	if err != nil {
		return service.StreamResponse{}, err
	}
	r.streamShard[id] = k
	return resp, nil
}

func (r *Router) GetStream(id string) (service.StreamResponse, error) {
	return r.route(r.streamShard, id).GetStream(id)
}

func (r *Router) ListStreams() service.ListStreamsResponse {
	out := service.ListStreamsResponse{Streams: []service.StreamResponse{}}
	for _, c := range r.cores {
		out.Streams = append(out.Streams, c.ListStreams().Streams...)
	}
	sortByID(out.Streams, func(s service.StreamResponse) string { return s.ID })
	return out
}

func (r *Router) DeleteStream(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.route(r.streamShard, id).DeleteStream(id); err != nil {
		return err
	}
	delete(r.streamShard, id)
	return nil
}

func (r *Router) CloseEpoch(ctx context.Context, id string) (service.EpochReleaseWire, error) {
	return r.route(r.streamShard, id).CloseEpoch(ctx, id)
}

func (r *Router) StreamReleases(ctx context.Context, id string, since uint64, wait time.Duration) (service.StreamReleasesResponse, error) {
	return r.route(r.streamShard, id).StreamReleases(ctx, id, since, wait)
}

// --- lifecycle / aggregates ------------------------------------------------

// Checkpoint snapshots every shard and aggregates the stats (summed
// bytes, slowest duration, the highest LSN's path). The first error wins;
// later shards still checkpoint so one failure does not grow every other
// shard's WAL unboundedly.
func (r *Router) Checkpoint() (service.CheckpointStats, error) {
	var agg service.CheckpointStats
	var firstErr error
	for _, c := range r.cores {
		st, err := c.Checkpoint()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		agg.Bytes += st.Bytes
		if st.DurationMS > agg.DurationMS {
			agg.DurationMS = st.DurationMS
		}
		if st.LSN >= agg.LSN {
			agg.LSN = st.LSN
			agg.Path = st.Path
		}
	}
	if firstErr != nil {
		return service.CheckpointStats{}, firstErr
	}
	return agg, nil
}

// ExpireSessions sweeps every shard and prunes the routing entries of the
// sessions the shards dropped.
func (r *Router) ExpireSessions() int {
	n := 0
	for _, c := range r.cores {
		n += c.ExpireSessions()
	}
	if n > 0 {
		r.mu.Lock()
		for id, k := range r.sessShard {
			if !r.cores[k].HasSession(id) {
				delete(r.sessShard, id)
			}
		}
		r.mu.Unlock()
	}
	return n
}

func (r *Router) SessionCount() int {
	n := 0
	for _, c := range r.cores {
		n += c.SessionCount()
	}
	return n
}

func (r *Router) StreamCount() int {
	n := 0
	for _, c := range r.cores {
		n += c.StreamCount()
	}
	return n
}

func (r *Router) CloseLeaked() int {
	n := 0
	for _, c := range r.cores {
		n += c.CloseLeaked()
	}
	return n
}

// Close shuts the shards down concurrently — each drains its own tickers
// and writers and takes its own final checkpoint.
func (r *Router) Close() {
	var wg sync.WaitGroup
	for _, c := range r.cores {
		wg.Add(1)
		go func(c *service.Core) {
			defer wg.Done()
			c.Close()
		}(c)
	}
	wg.Wait()
}

// Abandon simulates a crash on every shard (crash-recovery tests).
func (r *Router) Abandon() {
	for _, c := range r.cores {
		c.Abandon()
	}
}

// Registries returns every shard's metric registry, shard 0 first.
func (r *Router) Registries() []*metrics.Registry {
	out := make([]*metrics.Registry, 0, len(r.cores))
	for _, c := range r.cores {
		out = append(out, c.Metrics())
	}
	return out
}

// sortByID orders a scatter-gathered list the way a single core's list
// endpoint would ("ds-2" before "ds-10").
func sortByID[E any](s []E, id func(E) string) {
	sort.Slice(s, func(i, j int) bool { return service.CompareIDs(id(s[i]), id(s[j])) < 0 })
}
