package shard

import (
	"errors"
	"fmt"
	"testing"

	"blowfish/internal/server"
	"blowfish/internal/service"
)

// The router must stay substitutable for a single core behind the HTTP
// front.
var _ server.Service = (*Router)(nil)

func i64(v int64) *int64 { return &v }

var testPolicy = service.CreatePolicyRequest{
	Domain: []service.AttrSpec{{Name: "v", Size: 16}},
	Graph:  service.GraphSpec{Kind: "line"},
}

func newTestRouter(t *testing.T, n int, dir string) *Router {
	t.Helper()
	cfg := service.Config{Seed: 1}
	if dir != "" {
		cfg.Durability = service.DurabilityConfig{Dir: dir, Fsync: "always"}
	}
	r, err := Open(cfg, n)
	if err != nil {
		t.Fatalf("Open(%d shards): %v", n, err)
	}
	return r
}

// TestRouterPlacement pins the placement contract: datasets land on
// ShardFor(id, n), sessions and streams land on their dataset's shard,
// policies land everywhere.
func TestRouterPlacement(t *testing.T) {
	const n = 4
	r := newTestRouter(t, n, "")
	defer r.Close()

	pol, err := r.CreatePolicy(testPolicy)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		if !r.Core(k).HasPolicy(pol.ID) {
			t.Fatalf("policy %s missing on shard %d: broadcast incomplete", pol.ID, k)
		}
	}

	for i := 0; i < 16; i++ {
		ds, err := r.CreateDataset(service.CreateDatasetRequest{
			PolicyID: pol.ID, Rows: [][]int{{i % 16}},
		})
		if err != nil {
			t.Fatal(err)
		}
		want := ShardFor(ds.ID, n)
		if got := r.ShardOf(ds.ID); got != want {
			t.Fatalf("dataset %s routed to shard %d, want ShardFor = %d", ds.ID, got, want)
		}
		if !r.Core(want).HasDataset(ds.ID) {
			t.Fatalf("dataset %s not present on its shard %d", ds.ID, want)
		}
		for k := 0; k < n; k++ {
			if k != want && r.Core(k).HasDataset(ds.ID) {
				t.Fatalf("dataset %s duplicated on shard %d", ds.ID, k)
			}
		}

		// The session hint and the stream's dataset binding must colocate.
		sess, err := r.CreateSession(service.CreateSessionRequest{
			PolicyID: pol.ID, Budget: 10, DatasetID: ds.ID,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := r.ShardOf(sess.ID); got != want {
			t.Fatalf("session %s (hint %s) on shard %d, want dataset's shard %d", sess.ID, ds.ID, got, want)
		}
		st, err := r.CreateStream(service.CreateStreamRequest{
			PolicyID: pol.ID, DatasetID: ds.ID, Budget: 10,
			Epoch: service.EpochSpec{Epsilon: 0.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := r.ShardOf(st.ID); got != want {
			t.Fatalf("stream %s (dataset %s) on shard %d, want %d", st.ID, ds.ID, got, want)
		}

		// A colocated release must work end to end.
		if _, err := r.Histogram(sess.ID, service.HistogramRequest{DatasetID: ds.ID, Epsilon: 0.1}); err != nil {
			t.Fatalf("colocated histogram on %s/%s: %v", sess.ID, ds.ID, err)
		}
	}

	// An unhinted session still lands somewhere deterministic.
	sess, err := r.CreateSession(service.CreateSessionRequest{PolicyID: pol.ID, Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.ShardOf(sess.ID), ShardFor(sess.ID, n); got != want {
		t.Fatalf("unhinted session %s on shard %d, want ShardFor = %d", sess.ID, got, want)
	}

	if got, want := r.SessionCount(), 17; got != want {
		t.Fatalf("SessionCount = %d, want %d", got, want)
	}
	if got, want := r.StreamCount(), 16; got != want {
		t.Fatalf("StreamCount = %d, want %d", got, want)
	}
}

// TestRouterAssignmentStableAcrossRestart is the durability property the
// on-disk layout depends on: reopening the same directory with the same
// shard count routes every id to the shard that holds its data, and the
// recovered state answers reads.
func TestRouterAssignmentStableAcrossRestart(t *testing.T) {
	const n = 4
	dir := t.TempDir()
	r := newTestRouter(t, n, dir)

	pol, err := r.CreatePolicy(testPolicy)
	if err != nil {
		t.Fatal(err)
	}
	type placed struct{ ds, sess, st string }
	var resources []placed
	where := make(map[string]int)
	for i := 0; i < 12; i++ {
		ds, err := r.CreateDataset(service.CreateDatasetRequest{
			PolicyID: pol.ID, Rows: [][]int{{i % 16}, {(i + 1) % 16}},
		})
		if err != nil {
			t.Fatal(err)
		}
		sess, err := r.CreateSession(service.CreateSessionRequest{
			PolicyID: pol.ID, Budget: 10, DatasetID: ds.ID, Seed: i64(int64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := r.CreateStream(service.CreateStreamRequest{
			PolicyID: pol.ID, DatasetID: ds.ID, Budget: 10,
			Epoch: service.EpochSpec{Epsilon: 0.5}, Seed: i64(int64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Histogram(sess.ID, service.HistogramRequest{DatasetID: ds.ID, Epsilon: 0.5}); err != nil {
			t.Fatal(err)
		}
		resources = append(resources, placed{ds.ID, sess.ID, st.ID})
		for _, id := range []string{ds.ID, sess.ID, st.ID} {
			where[id] = r.ShardOf(id)
		}
	}
	r.Close()

	rec := newTestRouter(t, n, dir)
	defer rec.Close()
	for id, want := range where {
		if got := rec.ShardOf(id); got != want {
			t.Fatalf("id %s on shard %d after restart, was %d: assignment not stable", id, got, want)
		}
	}
	for _, p := range resources {
		ds, err := rec.GetDataset(p.ds)
		if err != nil {
			t.Fatalf("recovered GetDataset(%s): %v", p.ds, err)
		}
		if ds.Rows != 2 {
			t.Fatalf("dataset %s recovered %d rows, want 2", p.ds, ds.Rows)
		}
		sess, err := rec.GetSession(p.sess)
		if err != nil {
			t.Fatalf("recovered GetSession(%s): %v", p.sess, err)
		}
		if sess.Spent <= 0 {
			t.Fatalf("session %s recovered spent = %v, want the pre-restart charge", p.sess, sess.Spent)
		}
		if _, err := rec.GetStream(p.st); err != nil {
			t.Fatalf("recovered GetStream(%s): %v", p.st, err)
		}
	}

	// New creates after recovery keep minting fresh ids: no collision
	// with any pre-restart resource.
	ds, err := rec.CreateDataset(service.CreateDatasetRequest{PolicyID: pol.ID, Rows: [][]int{{3}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := where[ds.ID]; ok {
		t.Fatalf("post-recovery dataset reused id %s", ds.ID)
	}
}

// TestRouterScatterGatherLists pins the merge order: a scatter-gathered
// list is sorted the way a single core sorts ("ds-2" before "ds-10") and
// contains every resource exactly once.
func TestRouterScatterGatherLists(t *testing.T) {
	r := newTestRouter(t, 4, "")
	defer r.Close()
	pol, err := r.CreatePolicy(testPolicy)
	if err != nil {
		t.Fatal(err)
	}
	const total = 15
	for i := 0; i < total; i++ {
		if _, err := r.CreateDataset(service.CreateDatasetRequest{PolicyID: pol.ID}); err != nil {
			t.Fatal(err)
		}
	}
	got := r.ListDatasets().Datasets
	if len(got) != total {
		t.Fatalf("ListDatasets returned %d, want %d", len(got), total)
	}
	for i, d := range got {
		want := fmt.Sprintf("ds-%d", i+1)
		if d.ID != want {
			t.Fatalf("ListDatasets[%d] = %s, want %s (numeric id order)", i, d.ID, want)
		}
	}
}

// TestRouterPolicyBroadcastAtomicity: a delete any shard refuses leaves
// the policy on every shard, so the shards never disagree about the
// policy set.
func TestRouterPolicyBroadcastAtomicity(t *testing.T) {
	const n = 4
	r := newTestRouter(t, n, "")
	defer r.Close()
	pol, err := r.CreatePolicy(testPolicy)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the policy on one shard with a live session.
	ds, err := r.CreateDataset(service.CreateDatasetRequest{PolicyID: pol.ID})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.CreateSession(service.CreateSessionRequest{
		PolicyID: pol.ID, Budget: 1, DatasetID: ds.ID,
	}); err != nil {
		t.Fatal(err)
	}
	err = r.DeletePolicy(pol.ID)
	var se *service.Error
	if !errors.As(err, &se) || se.Code != service.CodePolicyInUse {
		t.Fatalf("DeletePolicy with a live session = %v, want %s", err, service.CodePolicyInUse)
	}
	for k := 0; k < n; k++ {
		if !r.Core(k).HasPolicy(pol.ID) {
			t.Fatalf("refused delete removed policy from shard %d: broadcast not atomic", k)
		}
	}

	// A second policy with nothing referencing it deletes everywhere.
	pol2, err := r.CreatePolicy(testPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.DeletePolicy(pol2.ID); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		if r.Core(k).HasPolicy(pol2.ID) {
			t.Fatalf("deleted policy lingers on shard %d", k)
		}
	}
}

// TestRouterUnknownIDErrors: a route miss must surface the same
// structured error a single core produces, not a router-invented one.
func TestRouterUnknownIDErrors(t *testing.T) {
	r := newTestRouter(t, 4, "")
	defer r.Close()
	for _, tc := range []struct {
		err  error
		code string
	}{
		{func() error { _, err := r.GetDataset("ds-999"); return err }(), service.CodeUnknownDataset},
		{func() error { _, err := r.GetSession("sess-999"); return err }(), service.CodeUnknownSession},
		{func() error { _, err := r.GetStream("stream-999"); return err }(), service.CodeUnknownStream},
		{func() error { _, err := r.GetPolicy("pol-999"); return err }(), service.CodeUnknownPolicy},
	} {
		var se *service.Error
		if !errors.As(tc.err, &se) || se.Code != tc.code {
			t.Fatalf("route miss = %v, want code %s", tc.err, tc.code)
		}
	}
}

// BenchmarkRouterOverhead measures the routing tax: the same seeded
// histogram release drawn through a 1-shard router versus directly
// against the core it routes to. The delta is the map lookup and the
// interface hop — the perf gate keeps it honest.
func BenchmarkRouterOverhead(b *testing.B) {
	setup := func(b *testing.B) (svc server.Service, sessID, dsID string) {
		b.Helper()
		r, err := Open(service.Config{Seed: 1}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(r.Close)
		pol, err := r.CreatePolicy(testPolicy)
		if err != nil {
			b.Fatal(err)
		}
		ds, err := r.CreateDataset(service.CreateDatasetRequest{
			PolicyID: pol.ID, Rows: [][]int{{1}, {2}, {3}, {5}, {8}, {13}},
		})
		if err != nil {
			b.Fatal(err)
		}
		sess, err := r.CreateSession(service.CreateSessionRequest{
			PolicyID: pol.ID, Budget: 1e12, DatasetID: ds.ID, Seed: i64(7),
		})
		if err != nil {
			b.Fatal(err)
		}
		return r, sess.ID, ds.ID
	}

	b.Run("direct", func(b *testing.B) {
		r, sessID, dsID := setup(b)
		core := r.(*Router).Core(0)
		req := service.HistogramRequest{DatasetID: dsID, Epsilon: 1e-6}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Histogram(sessID, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("router", func(b *testing.B) {
		r, sessID, dsID := setup(b)
		req := service.HistogramRequest{DatasetID: dsID, Epsilon: 1e-6}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Histogram(sessID, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}
