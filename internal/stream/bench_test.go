// Benchmarks for the streaming subsystem at the BENCH_stream.json workload:
// n = 200k tuples over |T| ≈ 4k, the adult capital-loss shape used by the
// engine benchmarks. BenchmarkStreamIngest measures sustained ingestion
// (one op = one event, wire row → encoded → batched → applied through the
// index under the amortized lock); BenchmarkEpochRelease measures epoch
// close latency over the 200k-row index while event producers and release
// pollers run concurrently. Results are recorded in BENCH_stream.json.
package stream

import (
	"context"
	"sync"
	"testing"
	"time"

	"blowfish/internal/composition"
	"blowfish/internal/domain"
	"blowfish/internal/engine"
	"blowfish/internal/metrics"
	"blowfish/internal/noise"
	"blowfish/internal/policy"
	"blowfish/internal/secgraph"
)

const (
	benchDomainSize = 4357
	benchTuples     = 200_000
	benchEps        = 1e-6
	benchBudget     = 1e9
)

// benchWorld builds the engine, table and ingestor over the benchmark
// policy, with preload tuples already indexed.
func benchWorld(b *testing.B, preload int) (*engine.Engine, *Table, *Ingestor) {
	b.Helper()
	return benchWorldCfg(b, preload, IngestConfig{})
}

// benchWorldCfg is benchWorld with an explicit ingest config (the metrics
// benchmarks install instruments through it).
func benchWorldCfg(b *testing.B, preload int, cfg IngestConfig) (*engine.Engine, *Table, *Ingestor) {
	b.Helper()
	d, err := domain.Line("v", benchDomainSize)
	if err != nil {
		b.Fatal(err)
	}
	g, err := secgraph.NewDistanceThreshold(d, 100)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := engine.Compile(policy.New(g))
	if err != nil {
		b.Fatal(err)
	}
	acct, err := composition.NewAccountant(benchBudget)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := engine.New(plan, acct, noise.NewSource(1), 1)
	if err != nil {
		b.Fatal(err)
	}
	ds := domain.NewDataset(d)
	src := noise.NewSource(2)
	for i := 0; i < preload; i++ {
		ds.MustAdd(domain.Point(src.Int63n(benchDomainSize)))
	}
	tbl, err := NewTable(ds)
	if err != nil {
		b.Fatal(err)
	}
	idx, err := eng.Index(ds)
	if err != nil {
		b.Fatal(err)
	}
	tbl.BindIndex(idx)
	// Prime the count vectors so the first measured op is steady-state.
	if _, err := idx.Histogram(); err != nil {
		b.Fatal(err)
	}
	ing, err := NewIngestor(tbl, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(ing.Close)
	return eng, tbl, ing
}

// benchEvents pre-builds wire events cycling through the domain.
func benchEvents(n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{Op: "append", Row: []int{(i * 31) % benchDomainSize}}
	}
	return evs
}

// BenchmarkStreamIngest measures sustained event throughput: one op is one
// appended event, submitted in 1024-event batches and applied by the single
// writer through the lock-amortized index path. events/sec = 1e9 / ns_per_op.
func BenchmarkStreamIngest(b *testing.B) {
	_, _, ing := benchWorld(b, 0)
	const chunk = 1024
	evs := benchEvents(chunk)
	b.ResetTimer()
	for done := 0; done < b.N; done += chunk {
		n := min(chunk, b.N-done)
		if _, _, err := ing.Submit(evs[:n]); err != nil {
			b.Fatal(err)
		}
	}
	if err := ing.Flush(context.Background()); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStreamIngestMetrics is BenchmarkStreamIngest with the ingest
// instruments installed: the benchgate holds the instrumentation overhead
// (one histogram observation + three counter bumps per applied batch, on
// the writer goroutine) inside the hot-path regression threshold.
func BenchmarkStreamIngestMetrics(b *testing.B) {
	reg := metrics.NewRegistry()
	im := &IngestMetrics{
		ApplySeconds:    reg.Histogram("apply_seconds", "bench", nil),
		Batches:         reg.Counter("batches_total", "bench"),
		Events:          reg.Counter("events_total", "bench"),
		Rejected:        reg.Counter("rejected_total", "bench"),
		JournalFailures: reg.Counter("journal_failures_total", "bench"),
	}
	_, _, ing := benchWorldCfg(b, 0, IngestConfig{Metrics: im})
	const chunk = 1024
	evs := benchEvents(chunk)
	b.ResetTimer()
	for done := 0; done < b.N; done += chunk {
		n := min(chunk, b.N-done)
		if _, _, err := ing.Submit(evs[:n]); err != nil {
			b.Fatal(err)
		}
	}
	if err := ing.Flush(context.Background()); err != nil {
		b.Fatal(err)
	}
	if got := int(im.Events.Value()); got != b.N {
		b.Fatalf("instruments counted %d events, want %d", got, b.N)
	}
}

// BenchmarkStreamIngestParallel is the same workload submitted from
// GOMAXPROCS goroutines: contention on the queue plus batching by the one
// writer.
func BenchmarkStreamIngestParallel(b *testing.B) {
	_, _, ing := benchWorld(b, 0)
	const chunk = 256
	evs := benchEvents(chunk)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for {
			n := 0
			for n < chunk && pb.Next() {
				n++
			}
			if n == 0 {
				return
			}
			if _, _, err := ing.Submit(evs[:n]); err != nil {
				b.Error(err)
				return
			}
		}
	})
	if err := ing.Flush(context.Background()); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEpochRelease measures epoch-close latency (histogram kind) over
// a 200k-row dataset while a producer keeps appending events and a poller
// keeps draining the release cursor — the continual-observation steady
// state. ns_per_op approximates p50 release latency.
func BenchmarkEpochRelease(b *testing.B) {
	eng, tbl, ing := benchWorld(b, benchTuples)
	st, err := New(eng, tbl, Config{Epsilon: benchEps})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Stop()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // concurrent producer
		defer wg.Done()
		evs := benchEvents(256)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := ing.Submit(evs); err != nil {
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	go func() { // concurrent poller
		defer wg.Done()
		var since uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, rel := range st.Releases(since) {
				since = rel.Seq
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.CloseEpoch(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// BenchmarkEpochReleaseAllKinds closes epochs publishing all three release
// kinds per close (histogram + cumulative + range) over the 200k-row index.
func BenchmarkEpochReleaseAllKinds(b *testing.B) {
	eng, tbl, _ := benchWorld(b, benchTuples)
	st, err := New(eng, tbl, Config{
		Epsilon:      benchEps,
		Kinds:        []ReleaseKind{KindHistogram, KindCumulative, KindRange},
		RangeQueries: []RangeQuery{{Lo: 100, Hi: 2500}},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.CloseEpoch(); err != nil {
			b.Fatal(err)
		}
	}
}
