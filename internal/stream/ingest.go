package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"blowfish/internal/domain"
	"blowfish/internal/engine"
	"blowfish/internal/metrics"
)

// Event is one wire-level mutation of a streamed dataset.
type Event struct {
	// Op is "append", "upsert" or "delete".
	Op string
	// ID is the tuple identifier for upsert and delete (Dataset index;
	// Remove recycles the last identifier into the removed slot).
	ID int
	// Row holds the attribute values for append and upsert.
	Row []int
}

// ErrIngestClosed is returned by Submit after Close.
var ErrIngestClosed = errors.New("stream: ingestor closed")

// QueueFullError is returned by TrySubmit when the ingest queue lacks room
// for the whole batch. Nothing was enqueued; the caller should retry after
// backing off (servers translate this into a structured queue_full
// response with a Retry-After hint instead of blocking the connection).
type QueueFullError struct {
	// Batch is the size of the rejected batch.
	Batch int
	// Free is the queue capacity that was available.
	Free int
	// Depth is the queue's total capacity.
	Depth int
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("stream: ingest queue full (%d events submitted, %d of %d slots free)",
		e.Batch, e.Free, e.Depth)
}

// IngestConfig tunes an Ingestor. The zero value is usable.
type IngestConfig struct {
	// BatchSize is the largest mutation batch applied under one lock
	// acquisition; defaults to 256.
	BatchSize int
	// FlushInterval bounds how long a non-full batch waits for more events
	// before applying; defaults to 2ms.
	FlushInterval time.Duration
	// QueueDepth is the channel buffer between Submit and the writer;
	// Submit blocks (backpressure) when it is full. Defaults to 4096.
	QueueDepth int
	// StartSeq resumes sequence numbering after a recovery: the first
	// submitted event is assigned StartSeq+1 and the processed cursor
	// starts at StartSeq, so clients polling processed_seq keep a monotone
	// view across restarts. Zero (the default) starts a fresh log at 1.
	StartSeq uint64
	// Metrics, when non-nil, instruments the writer goroutine. All
	// increments happen on that single goroutine, after the batch applies,
	// so instrumentation adds nothing to the Submit path; queue depth and
	// cursor gauges come from Stats() at scrape time instead.
	Metrics *IngestMetrics
}

// IngestMetrics are the pre-resolved instruments an ingestor's writer
// goroutine reports into. Any field may be nil.
type IngestMetrics struct {
	// ApplySeconds observes the latency of each batch apply — journal
	// append (and its fsync, under fsync=always) plus the index update.
	ApplySeconds *metrics.Histogram
	// Batches and Events count applied batches and the events in them.
	Batches *metrics.Counter
	Events  *metrics.Counter
	// Rejected counts apply-time rejections (bad tuple ids).
	Rejected *metrics.Counter
	// JournalFailures counts batches refused by a failed write-ahead
	// append (nothing applied, cursor held back).
	JournalFailures *metrics.Counter
}

func (c *IngestConfig) fill() {
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
}

// IngestStats is a snapshot of an ingestor's counters.
type IngestStats struct {
	// Submitted is the highest sequence number assigned.
	Submitted uint64
	// Processed is the highest sequence number the writer has finished with
	// (applied or rejected); the cursor WaitApplied waits on.
	Processed uint64
	// Rejected counts events that failed at apply time (bad tuple ids).
	Rejected uint64
	// LastError describes the most recent apply-time rejection, "" if none.
	LastError string
	// Queued is the number of events waiting in the channel.
	Queued int
}

// seqMut is one queued mutation with its assigned sequence number.
type seqMut struct {
	seq uint64
	mut engine.Mutation
}

// Ingestor is the single-writer event log over a Table: Submit validates
// and enqueues events, a dedicated goroutine applies them in batches so the
// per-event cost of the index lock is amortized across the batch. One
// ingestor per dataset; Submit is safe for concurrent use.
type Ingestor struct {
	tbl *Table
	cfg IngestConfig

	mu      sync.Mutex // orders seq assignment with channel sends
	nextSeq uint64
	closed  bool

	ch   chan seqMut
	quit chan struct{}
	done chan struct{}

	// mutBuf is the writer goroutine's reusable apply batch.
	mutBuf []engine.Mutation

	stateMu   sync.Mutex // guards the applied cursor + notify channel
	processed uint64
	rejected  uint64
	lastErr   string
	notify    chan struct{}

	closeOnce sync.Once
}

// NewIngestor starts the writer goroutine for tbl. Close it to stop.
func NewIngestor(tbl *Table, cfg IngestConfig) (*Ingestor, error) {
	if tbl == nil {
		return nil, errors.New("stream: nil table")
	}
	cfg.fill()
	in := &Ingestor{
		tbl:       tbl,
		cfg:       cfg,
		nextSeq:   cfg.StartSeq,
		processed: cfg.StartSeq,
		ch:        make(chan seqMut, cfg.QueueDepth),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		notify:    make(chan struct{}),
	}
	go in.run()
	return in, nil
}

// EncodeEvents validates events against dom and lowers them to mutations.
// Row values are encoded eagerly so the submitter learns about malformed
// rows synchronously; tuple-id range errors can only surface at apply time
// (the dataset length changes under the queue) and are counted as
// rejections instead.
func EncodeEvents(dom *domain.Domain, events []Event) ([]engine.Mutation, error) {
	muts := make([]engine.Mutation, len(events))
	for i, ev := range events {
		switch ev.Op {
		case "append":
			p, err := dom.Encode(ev.Row...)
			if err != nil {
				return nil, fmt.Errorf("event %d: %w", i, err)
			}
			muts[i] = engine.Mutation{Op: engine.MutAdd, P: p}
		case "upsert":
			p, err := dom.Encode(ev.Row...)
			if err != nil {
				return nil, fmt.Errorf("event %d: %w", i, err)
			}
			if ev.ID < 0 {
				return nil, fmt.Errorf("event %d: negative tuple id %d", i, ev.ID)
			}
			muts[i] = engine.Mutation{Op: engine.MutSet, Index: ev.ID, P: p}
		case "delete":
			if ev.ID < 0 {
				return nil, fmt.Errorf("event %d: negative tuple id %d", i, ev.ID)
			}
			muts[i] = engine.Mutation{Op: engine.MutRemove, Index: ev.ID}
		default:
			return nil, fmt.Errorf("event %d: unknown op %q (want append, upsert or delete)", i, ev.Op)
		}
	}
	return muts, nil
}

// Submit validates events and enqueues them, returning the sequence numbers
// assigned to the first and last event. It blocks when the queue is full
// (backpressure) and fails fast with ErrIngestClosed after Close. A
// validation error enqueues nothing. When Close lands mid-batch, the
// already-sent prefix still applies (the writer drains the queue before
// exiting); the error then reports the partially enqueued range — first
// and last cover what actually landed — so callers can tell their clients
// the truth instead of claiming total failure.
func (in *Ingestor) Submit(events []Event) (first, last uint64, err error) {
	muts, err := EncodeEvents(in.tbl.Dataset().Domain(), events)
	if err != nil {
		return 0, 0, err
	}
	if len(muts) == 0 {
		return 0, 0, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return 0, 0, ErrIngestClosed
	}
	first = in.nextSeq + 1
	for i, m := range muts {
		in.nextSeq++
		select {
		case in.ch <- seqMut{seq: in.nextSeq, mut: m}:
		case <-in.quit:
			in.nextSeq--
			if i == 0 {
				return 0, 0, ErrIngestClosed
			}
			return first, in.nextSeq, fmt.Errorf(
				"stream: %d of %d events enqueued (seqs %d-%d) before close: %w",
				i, len(muts), first, in.nextSeq, ErrIngestClosed)
		}
	}
	return first, in.nextSeq, nil
}

// TrySubmit is Submit without the blocking: the whole batch is enqueued
// atomically if the queue has room for every event, and nothing is
// enqueued — returning a *QueueFullError — if it does not. All-or-nothing
// is sound because sequence assignment serializes every sender under the
// same mutex and only the writer goroutine drains the channel, so the free
// space observed here cannot shrink before the sends below complete.
func (in *Ingestor) TrySubmit(events []Event) (first, last uint64, err error) {
	muts, err := EncodeEvents(in.tbl.Dataset().Domain(), events)
	if err != nil {
		return 0, 0, err
	}
	if len(muts) == 0 {
		return 0, 0, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.closed {
		return 0, 0, ErrIngestClosed
	}
	if free := cap(in.ch) - len(in.ch); free < len(muts) {
		return 0, 0, &QueueFullError{Batch: len(muts), Free: free, Depth: cap(in.ch)}
	}
	first = in.nextSeq + 1
	for _, m := range muts {
		in.nextSeq++
		in.ch <- seqMut{seq: in.nextSeq, mut: m}
	}
	return first, in.nextSeq, nil
}

// SubmittedSeq returns the highest assigned sequence number.
func (in *Ingestor) SubmittedSeq() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.nextSeq
}

// ProcessedSeq returns the highest sequence number the writer has finished
// with.
func (in *Ingestor) ProcessedSeq() uint64 {
	in.stateMu.Lock()
	defer in.stateMu.Unlock()
	return in.processed
}

// Stats returns a snapshot of the ingestor's counters.
func (in *Ingestor) Stats() IngestStats {
	in.mu.Lock()
	submitted := in.nextSeq
	in.mu.Unlock()
	in.stateMu.Lock()
	defer in.stateMu.Unlock()
	return IngestStats{
		Submitted: submitted,
		Processed: in.processed,
		Rejected:  in.rejected,
		LastError: in.lastErr,
		Queued:    len(in.ch),
	}
}

// WaitProcessed blocks until the writer has processed every event up to and
// including seq, the context is done, or the ingestor is closed with seq
// still unprocessed.
func (in *Ingestor) WaitProcessed(ctx context.Context, seq uint64) error {
	for {
		in.stateMu.Lock()
		cur, ch := in.processed, in.notify
		in.stateMu.Unlock()
		if cur >= seq {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		case <-in.done:
			in.stateMu.Lock()
			cur = in.processed
			in.stateMu.Unlock()
			if cur >= seq {
				return nil
			}
			return ErrIngestClosed
		}
	}
}

// Flush blocks until everything submitted so far has been applied.
func (in *Ingestor) Flush(ctx context.Context) error {
	return in.WaitProcessed(ctx, in.SubmittedSeq())
}

// Close stops accepting events, drains and applies the queue, and stops the
// writer goroutine. It is idempotent and returns once the writer has
// exited.
func (in *Ingestor) Close() {
	<-in.Shutdown()
}

// Shutdown is the non-blocking half of Close: it stops accepting events
// and signals the writer to drain, returning a channel that closes when
// the writer has exited. Server.Close uses it to signal every ingestor
// first and then wait on all of them under one deadline, instead of
// serializing full drains.
func (in *Ingestor) Shutdown() <-chan struct{} {
	in.closeOnce.Do(func() {
		in.mu.Lock()
		in.closed = true
		in.mu.Unlock()
		close(in.quit)
	})
	return in.done
}

// run is the single writer: it collects events into batches bounded by
// BatchSize and FlushInterval and applies each batch under one table lock
// acquisition.
func (in *Ingestor) run() {
	defer close(in.done)
	batch := make([]seqMut, 0, in.cfg.BatchSize)
	for {
		select {
		case m := <-in.ch:
			batch = append(batch[:0], m)
			in.fill(&batch)
			in.apply(batch)
		case <-in.quit:
			for {
				select {
				case m := <-in.ch:
					batch = append(batch[:0], m)
					in.fill(&batch)
					in.apply(batch)
					continue
				default:
				}
				return
			}
		}
	}
}

// fill tops the batch up to BatchSize, waiting at most FlushInterval for
// stragglers so light traffic is not delayed and heavy traffic amortizes.
func (in *Ingestor) fill(batch *[]seqMut) {
	if len(*batch) >= in.cfg.BatchSize {
		return
	}
	timer := time.NewTimer(in.cfg.FlushInterval)
	defer timer.Stop()
	for len(*batch) < in.cfg.BatchSize {
		select {
		case m := <-in.ch:
			*batch = append(*batch, m)
		case <-timer.C:
			return
		case <-in.quit:
			// Drain without waiting: Close flushes what was submitted.
			for len(*batch) < in.cfg.BatchSize {
				select {
				case m := <-in.ch:
					*batch = append(*batch, m)
				default:
					return
				}
			}
			return
		}
	}
}

// apply pushes one batch through the table via ApplyLogged, which journals
// it write-ahead (durable servers), applies it skipping over individually
// rejected mutations (bad tuple ids) so one poison event cannot wedge the
// stream, and records the sequence cursor — one lock acquisition for all
// three. Then the processed cursor advances and waiters wake.
func (in *Ingestor) apply(batch []seqMut) {
	// mutBuf is only touched here, on the single writer goroutine, so the
	// per-batch mutation slice is allocated once and reused.
	if cap(in.mutBuf) < len(batch) {
		in.mutBuf = make([]engine.Mutation, 0, cap(batch))
	}
	muts := in.mutBuf[:len(batch)]
	for i, m := range batch {
		muts[i] = m.mut
	}
	met := in.cfg.Metrics
	var start time.Time
	if met != nil {
		start = time.Now()
	}
	_, rej, err := in.tbl.ApplyLogged(batch[0].seq, muts)
	if met != nil {
		if met.ApplySeconds != nil {
			met.ApplySeconds.ObserveSince(start)
		}
		if errors.Is(err, ErrJournalFailed) {
			if met.JournalFailures != nil {
				met.JournalFailures.Inc()
			}
		} else {
			if met.Batches != nil {
				met.Batches.Inc()
			}
			if met.Events != nil {
				met.Events.Add(uint64(len(batch)))
			}
			if met.Rejected != nil {
				met.Rejected.Add(uint64(rej))
			}
		}
	}
	if errors.Is(err, ErrJournalFailed) {
		// The write-ahead append failed: nothing was applied and nothing
		// is durable, so the processed cursor must NOT advance — a wait=1
		// client blocks (and times out with an error) instead of
		// receiving a false ack for events that would vanish on restart.
		in.stateMu.Lock()
		in.lastErr = err.Error()
		in.stateMu.Unlock()
		return
	}
	var lastErr string
	if err != nil {
		lastErr = err.Error()
	}
	in.stateMu.Lock()
	in.processed = batch[len(batch)-1].seq
	in.rejected += uint64(rej)
	if lastErr != "" {
		in.lastErr = lastErr
	}
	close(in.notify)
	in.notify = make(chan struct{})
	in.stateMu.Unlock()
}
