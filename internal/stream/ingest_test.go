package stream

import (
	"context"
	"errors"
	"testing"
)

// TestTrySubmitQueueFull pins the explicit-backpressure contract: with the
// writer wedged behind the table's lock, a batch larger than the queue's
// free space is rejected whole with a *QueueFullError, nothing is
// enqueued, and once the writer drains the queue accepts again.
func TestTrySubmitQueueFull(t *testing.T) {
	f := newFixture(t, 16, 100, 1, IngestConfig{QueueDepth: 4, BatchSize: 4})

	// Wedge the writer: ApplyLogged needs the table's write lock, so a held
	// read lock stalls it after it has drained at most one batch.
	f.tbl.RLock()
	unlocked := false
	defer func() {
		if !unlocked {
			f.tbl.RUnlock()
		}
	}()

	// Fill the queue (plus whatever the writer already pulled into its
	// stalled batch). Loop until a TrySubmit reports queue_full.
	var accepted uint64
	var qf *QueueFullError
	for i := 0; i < 100; i++ {
		first, last, err := f.ing.TrySubmit(appends(i % 16))
		if err == nil {
			if first == 0 || last < first {
				t.Fatalf("accepted batch with bad seqs [%d,%d]", first, last)
			}
			accepted++
			continue
		}
		if !errors.As(err, &qf) {
			t.Fatalf("TrySubmit: want *QueueFullError, got %v", err)
		}
		break
	}
	if qf == nil {
		t.Fatal("queue never filled")
	}
	if qf.Depth != 4 || qf.Batch != 1 || qf.Free != 0 {
		t.Fatalf("QueueFullError fields: %+v", *qf)
	}

	// A rejected TrySubmit must not have assigned sequence numbers.
	if got := f.ing.SubmittedSeq(); got != accepted {
		t.Fatalf("SubmittedSeq = %d after %d accepted events", got, accepted)
	}

	// An oversized batch is rejected even on an empty queue: all-or-nothing.
	f.tbl.RUnlock()
	unlocked = true
	if err := f.ing.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if _, _, err := f.ing.TrySubmit(appends(1, 2, 3, 4, 5)); !errors.As(err, &qf) {
		t.Fatalf("oversized batch: want *QueueFullError, got %v", err)
	} else if qf.Batch != 5 || qf.Free != 4 {
		t.Fatalf("oversized batch fields: %+v", *qf)
	}

	// Every accepted event must land: no acked event is dropped.
	if _, _, err := f.ing.TrySubmit(appends(1, 2)); err != nil {
		t.Fatalf("TrySubmit after drain: %v", err)
	}
	if err := f.ing.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got, want := f.ds.Len(), int(accepted)+2; got != want {
		t.Fatalf("dataset has %d rows, want %d", got, want)
	}
}

// TestTrySubmitValidatesAndCloses mirrors Submit's edge cases.
func TestTrySubmitValidatesAndCloses(t *testing.T) {
	f := newFixture(t, 16, 100, 1, IngestConfig{})
	if _, _, err := f.ing.TrySubmit([]Event{{Op: "bogus"}}); err == nil {
		t.Fatal("want validation error")
	}
	if first, last, err := f.ing.TrySubmit(nil); first != 0 || last != 0 || err != nil {
		t.Fatalf("empty batch: %d %d %v", first, last, err)
	}
	f.ing.Close()
	if _, _, err := f.ing.TrySubmit(appends(1)); !errors.Is(err, ErrIngestClosed) {
		t.Fatalf("after close: want ErrIngestClosed, got %v", err)
	}
}
