package stream

import (
	"context"
	"errors"
	"testing"
	"time"

	"blowfish/internal/composition"
	"blowfish/internal/domain"
	"blowfish/internal/engine"
	"blowfish/internal/noise"
	"blowfish/internal/policy"
	"blowfish/internal/secgraph"
)

func lineEngine(t *testing.T, size int, budget float64, seed int64) (*engine.Engine, *domain.Domain) {
	t.Helper()
	dom := domain.MustLine("v", size)
	pol := policy.New(secgraph.NewComplete(dom))
	plan, err := engine.Compile(pol)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := composition.NewAccountant(budget)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(plan, acct, noise.NewSource(seed), 1)
	if err != nil {
		t.Fatal(err)
	}
	return eng, dom
}

func TestApplyLoggedJournalAndCursor(t *testing.T) {
	_, dom := lineEngine(t, 8, 10, 1)
	ds := domain.NewDataset(dom)
	tbl, err := NewTable(ds)
	if err != nil {
		t.Fatal(err)
	}
	var journaled []uint64
	tbl.SetJournal(func(firstSeq uint64, muts []engine.Mutation) error {
		journaled = append(journaled, firstSeq, firstSeq+uint64(len(muts))-1)
		return nil
	})
	muts := []engine.Mutation{
		{Op: engine.MutAdd, P: 1},
		{Op: engine.MutAdd, P: 2},
		{Op: engine.MutAdd, P: 3},
	}
	applied, rejected, err := tbl.ApplyLogged(1, muts)
	if applied != 3 || rejected != 0 || err != nil {
		t.Fatalf("ApplyLogged = (%d, %d, %v)", applied, rejected, err)
	}
	if got := tbl.LastSeq(); got != 3 {
		t.Fatalf("LastSeq = %d, want 3", got)
	}
	if len(journaled) != 2 || journaled[0] != 1 || journaled[1] != 3 {
		t.Fatalf("journal saw %v, want [1 3]", journaled)
	}
	// A poison mutation is skipped; the cursor still covers the batch.
	muts = []engine.Mutation{
		{Op: engine.MutAdd, P: 4},
		{Op: engine.MutRemove, Index: 99}, // out of range
		{Op: engine.MutAdd, P: 5},
	}
	applied, rejected, err = tbl.ApplyLogged(4, muts)
	if applied != 2 || rejected != 1 || err == nil {
		t.Fatalf("poison batch = (%d, %d, %v)", applied, rejected, err)
	}
	if got := tbl.LastSeq(); got != 6 {
		t.Fatalf("LastSeq after poison batch = %d, want 6", got)
	}
	if ds.Len() != 5 {
		t.Fatalf("dataset has %d tuples, want 5", ds.Len())
	}
}

func TestApplyLoggedJournalErrorRejectsBatch(t *testing.T) {
	_, dom := lineEngine(t, 8, 10, 1)
	tbl, _ := NewTable(domain.NewDataset(dom))
	boom := errors.New("disk full")
	tbl.SetJournal(func(uint64, []engine.Mutation) error { return boom })
	applied, rejected, err := tbl.ApplyLogged(1, []engine.Mutation{{Op: engine.MutAdd, P: 1}})
	if applied != 0 || rejected != 1 || !errors.Is(err, boom) {
		t.Fatalf("journal failure = (%d, %d, %v), want (0, 1, disk full)", applied, rejected, err)
	}
	if got := tbl.Dataset().Len(); got != 0 {
		t.Fatalf("unjournaled batch applied %d tuples", got)
	}
	if got := tbl.LastSeq(); got != 0 {
		t.Fatalf("LastSeq advanced to %d past an unjournaled batch", got)
	}
}

func TestTableSnapshotRestoreRoundTrip(t *testing.T) {
	_, dom := lineEngine(t, 8, 10, 1)
	ds := domain.NewDataset(dom)
	tbl, _ := NewTable(ds)
	tbl.TrackEpochs()
	tbl.ApplyLogged(1, []engine.Mutation{{Op: engine.MutAdd, P: 1}, {Op: engine.MutAdd, P: 2}})
	tbl.AdvanceEpoch()
	tbl.ApplyLogged(3, []engine.Mutation{{Op: engine.MutAdd, P: 3}})

	pts, st := tbl.Snapshot()
	if len(pts) != 3 || st.LastSeq != 3 || st.Applied != 3 || st.CurEpoch != 1 || !st.Tracking {
		t.Fatalf("snapshot = %v %+v", pts, st)
	}
	if len(st.EpochOf) != 3 || st.EpochOf[2] != 1 || st.EpochOf[0] != 0 {
		t.Fatalf("epoch tags = %v", st.EpochOf)
	}

	ds2, err := domain.FromPoints(dom, pts)
	if err != nil {
		t.Fatal(err)
	}
	tbl2, _ := NewTable(ds2)
	if err := tbl2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	pts2, st2 := tbl2.Snapshot()
	if len(pts2) != len(pts) || st2.LastSeq != st.LastSeq || st2.CurEpoch != st.CurEpoch {
		t.Fatalf("restored snapshot = %v %+v", pts2, st2)
	}
	// Expiry behaves identically on the restored table: epoch-0 tuples go.
	n, err := tbl2.ExpireBefore(1)
	if err != nil || n != 2 {
		t.Fatalf("ExpireBefore on restored table = (%d, %v), want (2, nil)", n, err)
	}

	// Tag/dataset mismatch is refused.
	tbl3, _ := NewTable(domain.NewDataset(dom))
	if err := tbl3.RestoreState(st); err == nil {
		t.Fatal("RestoreState accepted tags over a different cardinality")
	}
}

func TestIngestorStartSeqResumes(t *testing.T) {
	_, dom := lineEngine(t, 8, 10, 1)
	tbl, _ := NewTable(domain.NewDataset(dom))
	in, err := NewIngestor(tbl, IngestConfig{StartSeq: 41})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	if got := in.ProcessedSeq(); got != 41 {
		t.Fatalf("initial ProcessedSeq = %d, want 41", got)
	}
	first, last, err := in.Submit([]Event{{Op: "append", Row: []int{1}}, {Op: "append", Row: []int{2}}})
	if err != nil || first != 42 || last != 43 {
		t.Fatalf("Submit = (%d, %d, %v), want (42, 43, nil)", first, last, err)
	}
	in.Close()
	if got := tbl.LastSeq(); got != 43 {
		t.Fatalf("table LastSeq = %d, want 43", got)
	}
}

func TestStreamStateExportRestoreRoundTrip(t *testing.T) {
	mk := func() (*Stream, *engine.Engine, *Table) {
		eng, dom := lineEngine(t, 8, 10, 99)
		ds := domain.NewDataset(dom)
		for i := 0; i < 40; i++ {
			ds.MustAdd(domain.Point(i % 8))
		}
		tbl, _ := NewTable(ds)
		st, err := New(eng, tbl, Config{Epsilon: 0.5, Kinds: []ReleaseKind{KindHistogram}})
		if err != nil {
			t.Fatal(err)
		}
		return st, eng, tbl
	}
	live, liveEng, _ := mk()
	for i := 0; i < 3; i++ {
		if _, err := live.CloseEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	exported := live.ExportState()
	liveNoise, err := liveEng.ExportNoise()
	if err != nil {
		t.Fatal(err)
	}
	liveAcct := liveEng.Accountant().State()

	rec, recEng, _ := mk()
	if err := rec.RestoreState(exported); err != nil {
		t.Fatal(err)
	}
	if err := recEng.Accountant().Restore(liveAcct); err != nil {
		t.Fatal(err)
	}
	if err := recEng.RestoreNoise(liveNoise); err != nil {
		t.Fatal(err)
	}

	// Cursors and buffered releases survive.
	a, b := live.Releases(0), rec.Releases(0)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("buffered releases: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || a[i].Epoch != b[i].Epoch {
			t.Fatalf("release %d cursors diverge: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Future closes are bit-for-bit identical.
	ra, err := live.CloseEpoch()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := rec.CloseEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if ra.Seq != rb.Seq || ra.Epoch != rb.Epoch || ra.Epsilon != rb.Epsilon {
		t.Fatalf("post-restore close headers diverge: %+v vs %+v", ra, rb)
	}
	for i := range ra.Histogram {
		if ra.Histogram[i] != rb.Histogram[i] {
			t.Fatalf("post-restore histograms diverge at %d: %v vs %v", i, ra.Histogram[i], rb.Histogram[i])
		}
	}
	// Restore onto a used stream is refused.
	if err := rec.RestoreState(exported); err == nil {
		t.Fatal("RestoreState accepted a non-fresh stream")
	}
}

func TestStreamJournalAbortsClose(t *testing.T) {
	eng, dom := lineEngine(t, 8, 10, 5)
	ds := domain.NewDataset(dom)
	ds.MustAdd(1)
	tbl, _ := NewTable(ds)
	st, err := New(eng, tbl, Config{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("wal gone")
	fail := true
	var seen []int
	st.SetJournal(func(epoch int) error {
		seen = append(seen, epoch)
		if fail {
			return boom
		}
		return nil
	})
	if _, err := st.CloseEpoch(); !errors.Is(err, boom) {
		t.Fatalf("close with failing journal = %v", err)
	}
	if got := st.Status(); got.Epoch != 0 || got.Releases != 0 {
		t.Fatalf("aborted close advanced state: %+v", got)
	}
	// The charge stands (privacy loss never under-counted)...
	if spent := eng.Accountant().Spent(); spent != 0.5 {
		t.Fatalf("aborted close spent %v, want 0.5 (charge stands)", spent)
	}
	// ...and the close can be retried once the journal recovers.
	fail = false
	rel, err := st.CloseEpoch()
	if err != nil || rel.Epoch != 0 {
		t.Fatalf("retried close = (%+v, %v)", rel, err)
	}
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 0 {
		t.Fatalf("journal saw epochs %v, want [0 0]", seen)
	}
}

func TestIngestJournalFailureNeverFalselyAcks(t *testing.T) {
	_, dom := lineEngine(t, 8, 10, 1)
	tbl, _ := NewTable(domain.NewDataset(dom))
	tbl.SetJournal(func(uint64, []engine.Mutation) error { return errors.New("disk gone") })
	in, err := NewIngestor(tbl, IngestConfig{FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	_, last, err := in.Submit([]Event{{Op: "append", Row: []int{1}}})
	if err != nil {
		t.Fatal(err)
	}
	// The batch can never become durable: the processed cursor must not
	// advance, so a waiting client times out instead of being acked.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := in.WaitProcessed(ctx, last); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitProcessed = %v, want deadline exceeded (no false ack)", err)
	}
	if got := in.ProcessedSeq(); got != 0 {
		t.Fatalf("processed cursor advanced to %d past an unjournaled batch", got)
	}
	if got := tbl.Dataset().Len(); got != 0 {
		t.Fatalf("unjournaled events applied: %d tuples", got)
	}
}

func TestTickerStopsOnJournalFailure(t *testing.T) {
	eng, dom := lineEngine(t, 8, 100, 5)
	ds := domain.NewDataset(dom)
	ds.MustAdd(1)
	tbl, _ := NewTable(ds)
	st, err := New(eng, tbl, Config{Epsilon: 0.5, Interval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	st.SetJournal(func(int) error { return errors.New("wal down") })
	st.Start()
	defer st.Stop()
	// The first tick charges once and fails the journal; the ticker must
	// stop rather than re-charging the same epoch forever.
	deadline := time.Now().Add(2 * time.Second)
	for eng.Accountant().Spent() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // ten more intervals, were it still running
	if spent := eng.Accountant().Spent(); spent != 0.5 {
		t.Fatalf("spent %v: ticker kept re-charging a journal-failed epoch", spent)
	}
}
