package stream

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"blowfish/internal/composition"
	"blowfish/internal/engine"
	"blowfish/internal/ordered"
)

// Window selects how epoch closes treat previously ingested tuples.
type Window string

const (
	// WindowCumulative releases over everything ingested so far (continual
	// observation of the growing dataset). The default.
	WindowCumulative Window = "cumulative"
	// WindowTumbling releases over the events of the closing epoch only,
	// then resets the dataset.
	WindowTumbling Window = "tumbling"
	// WindowSliding releases over the last Config.WindowEpochs epochs,
	// expiring older tuples at each close.
	WindowSliding Window = "sliding"
)

// ReleaseKind names one release published per epoch close.
type ReleaseKind string

const (
	// KindHistogram is the complete histogram (the block histogram h_P for
	// partition policies), Theorem 5.1 noise.
	KindHistogram ReleaseKind = "histogram"
	// KindCumulative is the Ordered Mechanism cumulative histogram.
	KindCumulative ReleaseKind = "cumulative"
	// KindRange is an Ordered Hierarchical release answering the configured
	// range queries.
	KindRange ReleaseKind = "range"
)

// RangeQuery is one inclusive range count answered by KindRange epochs.
type RangeQuery struct {
	Lo int
	Hi int
}

// Config binds a stream's window, epsilon schedule and release set.
type Config struct {
	// Window defaults to WindowCumulative.
	Window Window
	// WindowEpochs is the sliding-window width in epochs (>= 1); only for
	// WindowSliding.
	WindowEpochs int
	// Interval, when positive, makes Start close epochs automatically on a
	// ticker. Zero means epochs close only via CloseEpoch (the server's
	// manual trigger, and the deterministic path tests replay).
	Interval time.Duration
	// Epsilon is the per-epoch, per-kind ε charged at each close.
	Epsilon float64
	// Decay multiplies the epsilon each epoch (epoch e costs
	// Epsilon·Decay^e), letting long-lived streams front-load accuracy;
	// 0 is treated as 1 (constant schedule).
	Decay float64
	// Epsilons, when non-empty, overrides the schedule for the first
	// len(Epsilons) epochs; later epochs fall back to Epsilon·Decay^e.
	Epsilons []float64
	// Kinds defaults to [KindHistogram].
	Kinds []ReleaseKind
	// Fanout is the KindRange hierarchy branching factor; defaults to 16.
	Fanout int
	// RangeQueries are answered by each KindRange release.
	RangeQueries []RangeQuery
	// MaxReleases bounds the in-memory release buffer; older releases are
	// dropped (readers see a gap and resynchronize). Defaults to 1024.
	MaxReleases int
	// Logger, when set, receives the ticker goroutine's lifecycle events —
	// most importantly why an automatic stream stopped closing epochs
	// (budget exhausted, journal down). Nil logs nothing.
	Logger *slog.Logger
}

func (c *Config) fill() {
	if c.Window == "" {
		c.Window = WindowCumulative
	}
	if c.Decay == 0 {
		c.Decay = 1
	}
	if len(c.Kinds) == 0 {
		c.Kinds = []ReleaseKind{KindHistogram}
	}
	if c.Fanout == 0 {
		c.Fanout = 16
	}
	if c.MaxReleases <= 0 {
		c.MaxReleases = 1024
	}
}

// epsilonAt returns the schedule's ε for one kind at the given epoch.
func (c *Config) epsilonAt(epoch int) float64 {
	if epoch < len(c.Epsilons) {
		return c.Epsilons[epoch]
	}
	return c.Epsilon * math.Pow(c.Decay, float64(epoch))
}

// EpochRelease is the published output of one epoch close.
type EpochRelease struct {
	// Seq is the release cursor (1-based, dense); readers poll with
	// since=Seq to get everything after.
	Seq uint64
	// Epoch is the zero-based epoch number that closed.
	Epoch int
	// Events is the table's applied-mutation count at close.
	Events uint64
	// N is the dataset cardinality the releases were computed over.
	N int
	// Epsilon is the per-kind ε charged this epoch.
	Epsilon float64
	// Remaining is the stream budget left after the close.
	Remaining float64
	// Histogram holds the KindHistogram counts, nil if not configured.
	Histogram []float64
	// CumulativeRaw / CumulativeInferred hold the KindCumulative outputs.
	CumulativeRaw      []float64
	CumulativeInferred []float64
	// RangeAnswers holds one KindRange answer per configured query.
	RangeAnswers []float64
}

// Stream is the continual-release scheduler over one table: each CloseEpoch
// charges the epsilon schedule through the engine's accountant (sequential
// composition) and publishes the configured releases. Safe for concurrent
// use; epoch closes serialize among themselves but run concurrently with
// ingestion (which they lock out only for the read of the count vectors).
type Stream struct {
	eng *engine.Engine
	tbl *Table
	idx *engine.DatasetIndex
	cfg Config

	// waiters counts goroutines parked in WaitReleases right now — the
	// long-poll connections the server's release-cursor endpoint holds
	// open. Atomic so the metrics scrape never touches the epoch lock.
	waiters atomic.Int64

	mu        sync.Mutex // serializes epoch closes, guards everything below
	epoch     int
	exhausted bool
	lastClose time.Time // most recent successful close (creation time before any)
	releases  []*EpochRelease
	dropped   uint64 // releases evicted from the front of the buffer
	nextSeq   uint64
	notify    chan struct{}
	// journal, when set, is called under mu after an epoch's releases are
	// computed and charged but before the epoch advances and publishes: a
	// journal error aborts the close (the charge stands — privacy loss is
	// never under-counted — but nothing is published and the epoch may be
	// retried once durability recovers).
	journal func(epoch int) error

	startOnce sync.Once
	stopOnce  sync.Once
	quit      chan struct{}
	loopDone  chan struct{}
}

// ErrStopped is returned by WaitReleases when the stream is shut down
// while (or before) the waiter is parked: a closing server wakes every
// long-poll promptly instead of leaving them to their own deadlines.
var ErrStopped = errors.New("stream: stopped")

// New binds a stream to an engine and a table. The engine's accountant is
// the stream's budget schedule: epoch closes refuse once it is exhausted.
// Configuration that can never release (a histogram over a non-materializable
// domain, a sliding window without a width) fails here, not at first close.
//
// Any number of cumulative-window streams may share one table. Tumbling
// and sliding windows mutate shared state at each close (dataset resets,
// the table's epoch counter and tuple tags), so a windowed stream needs
// the table to itself — the HTTP server enforces one-stream-per-dataset
// whenever a non-cumulative window is involved; library callers must do
// the same.
func New(eng *engine.Engine, tbl *Table, cfg Config) (*Stream, error) {
	if eng == nil {
		return nil, errors.New("stream: nil engine")
	}
	if tbl == nil {
		return nil, errors.New("stream: nil table")
	}
	cfg.fill()
	plan := eng.Plan()
	switch cfg.Window {
	case WindowCumulative, WindowTumbling:
	case WindowSliding:
		if cfg.WindowEpochs < 1 {
			return nil, errors.New("stream: sliding window needs WindowEpochs >= 1")
		}
	default:
		return nil, fmt.Errorf("stream: unknown window %q (want cumulative, tumbling or sliding)", cfg.Window)
	}
	if !(cfg.Epsilon > 0) && len(cfg.Epsilons) == 0 {
		return nil, errors.New("stream: epsilon schedule needs Epsilon > 0 or explicit Epsilons")
	}
	for i, e := range cfg.Epsilons {
		if !(e > 0) {
			return nil, fmt.Errorf("stream: Epsilons[%d] = %v, want > 0", i, e)
		}
	}
	if cfg.Decay < 0 {
		return nil, fmt.Errorf("stream: negative decay %v", cfg.Decay)
	}
	size := int(plan.Domain().Size())
	for _, k := range cfg.Kinds {
		switch k {
		case KindHistogram:
			if plan.Partition() == nil {
				if _, err := plan.HistogramSensitivity(); err != nil {
					return nil, fmt.Errorf("stream: histogram releases unavailable: %w", err)
				}
			}
		case KindCumulative:
			if _, err := plan.CumulativeSensitivity(); err != nil {
				return nil, fmt.Errorf("stream: cumulative releases unavailable: %w", err)
			}
			if plan.Domain().NumAttrs() != 1 {
				return nil, errors.New("stream: cumulative releases require a one-dimensional domain")
			}
		case KindRange:
			if _, err := plan.OHFor(cfg.Fanout); err != nil {
				return nil, fmt.Errorf("stream: range releases unavailable: %w", err)
			}
			if len(cfg.RangeQueries) == 0 {
				return nil, errors.New("stream: range releases need at least one RangeQuery")
			}
			for i, q := range cfg.RangeQueries {
				if q.Lo < 0 || q.Hi >= size || q.Lo > q.Hi {
					return nil, fmt.Errorf("stream: range query %d: invalid [%d,%d] over domain size %d", i, q.Lo, q.Hi, size)
				}
			}
		default:
			return nil, fmt.Errorf("stream: unknown release kind %q", k)
		}
	}
	idx, err := eng.Index(tbl.Dataset())
	if err != nil {
		return nil, err
	}
	tbl.BindIndex(idx)
	if cfg.Window == WindowSliding {
		tbl.TrackEpochs()
	}
	return &Stream{
		eng:       eng,
		tbl:       tbl,
		idx:       idx,
		cfg:       cfg,
		lastClose: time.Now(),
		notify:    make(chan struct{}),
		quit:      make(chan struct{}),
		loopDone:  make(chan struct{}),
	}, nil
}

// Table returns the stream's table.
func (st *Stream) Table() *Table { return st.tbl }

// Unbind detaches the stream's index from its table, so ingestion stops
// maintaining count vectors nobody will read. Call it when deleting a
// stream whose dataset lives on; a no-op if a newer stream has bound its
// own index since.
func (st *Stream) Unbind() { st.tbl.Unbind(st.idx) }

// Config returns the stream's configuration (with defaults filled).
func (st *Stream) Config() Config { return st.cfg }

// CloseEpoch closes the current epoch: sliding windows expire tuples that
// age out, the configured releases are computed and charged at the epoch's
// scheduled ε, tumbling windows reset, and the release is published to the
// buffer. Past budget (or schedule) exhaustion it fails with an error
// wrapping composition.ErrBudgetExceeded and the stream stays permanently
// exhausted; the epoch does not advance on failure.
//
// The whole epoch's cost is prechecked before any kind runs, so a failed
// close normally charges nothing. The one exception is an accountant
// shared with ad-hoc releases (Session.NewStream shares the session
// budget): a concurrent spend landing between kinds can let earlier kinds
// charge and a later one fail, discarding the epoch unpublished. The
// charge stands — privacy loss is never under-counted — and the epoch may
// be retried; give a stream its own session to rule the race out.
func (st *Stream) CloseEpoch() (*EpochRelease, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	eps := st.cfg.epsilonAt(st.epoch)
	if !(eps > 0) {
		// An explicit Epsilons list that ran out (with no base Epsilon to
		// fall back to) is a finite budget schedule reaching its end: the
		// stream is terminally exhausted, exactly as if the ε budget had
		// run dry — the ticker stops and long-pollers get the signal.
		st.exhausted = true
		return nil, fmt.Errorf("stream: epoch %d has no scheduled epsilon (schedule exhausted): %w", st.epoch, composition.ErrBudgetExceeded)
	}
	// Refuse the whole epoch up front when the full per-epoch cost cannot
	// fit: a partial epoch (first kind charged, second refused) would leak a
	// half-published release. The per-release Spend below stays the
	// authoritative atomic gate.
	if err := st.eng.Accountant().CanSpend(eps * float64(len(st.cfg.Kinds))); err != nil {
		st.exhausted = errors.Is(err, composition.ErrBudgetExceeded)
		return nil, err
	}
	if st.cfg.Window == WindowSliding {
		cutoff := int32(st.epoch - st.cfg.WindowEpochs + 1)
		if _, err := st.tbl.ExpireBefore(cutoff); err != nil {
			return nil, fmt.Errorf("stream: expiring epoch %d window: %w", st.epoch, err)
		}
	}
	rel := &EpochRelease{Epoch: st.epoch, Epsilon: eps}
	st.tbl.RLock()
	err := st.computeLocked(rel)
	rel.Events = st.tbl.applied
	rel.N = st.tbl.ds.Len()
	if err == nil && st.journal != nil {
		// The epoch record must be appended while the table read lock is
		// still held: an ingest batch journaling in the gap would order
		// itself before this record, and replay would then re-execute the
		// close over the mutated table — with the noise stream restored
		// bit-for-bit, republishing a *different* value under the same
		// release cursor (subtracting the two fetches would cancel the
		// noise and expose the raw count delta). Under the lock, the WAL
		// order is exactly the table-state order the close observed.
		if jerr := st.journal(st.epoch); jerr != nil {
			err = fmt.Errorf("stream: journaling epoch %d close: %w: %w", st.epoch, ErrJournalFailed, jerr)
		}
	}
	st.tbl.RUnlock()
	if err != nil {
		st.exhausted = st.exhausted || errors.Is(err, composition.ErrBudgetExceeded)
		return nil, err
	}
	if st.cfg.Window == WindowTumbling {
		if _, err := st.tbl.Reset(); err != nil {
			return nil, fmt.Errorf("stream: tumbling reset: %w", err)
		}
	}
	st.epoch++
	st.tbl.AdvanceEpoch()
	st.lastClose = time.Now()
	rel.Remaining = st.eng.Accountant().Remaining()
	st.nextSeq++
	rel.Seq = st.nextSeq
	st.releases = append(st.releases, rel)
	if len(st.releases) > st.cfg.MaxReleases {
		over := len(st.releases) - st.cfg.MaxReleases
		st.releases = append(st.releases[:0:0], st.releases[over:]...)
		st.dropped += uint64(over)
	}
	close(st.notify)
	st.notify = make(chan struct{})
	return rel, nil
}

// computeLocked runs every configured release kind under the table read
// lock, filling rel. Each kind charges eps through the engine.
func (st *Stream) computeLocked(rel *EpochRelease) error {
	for _, k := range st.cfg.Kinds {
		switch k {
		case KindHistogram:
			var counts []float64
			var err error
			if st.eng.Plan().Partition() != nil {
				counts, err = st.eng.ReleasePartitionHistogram(st.idx, nil, rel.Epsilon)
			} else {
				counts, err = st.eng.ReleaseHistogram(st.idx, rel.Epsilon)
			}
			if err != nil {
				return err
			}
			rel.Histogram = counts
		case KindCumulative:
			raw, inferred, err := st.eng.ReleaseCumulative(st.idx, rel.Epsilon)
			if err != nil {
				return err
			}
			rel.CumulativeRaw, rel.CumulativeInferred = raw, inferred
		case KindRange:
			oh, err := st.eng.NewRangeRelease(st.idx, st.cfg.Fanout, rel.Epsilon)
			if err != nil {
				return err
			}
			answers, err := answerRangeQueries(oh, st.cfg.RangeQueries)
			if err != nil {
				return err
			}
			rel.RangeAnswers = answers
		}
	}
	return nil
}

func answerRangeQueries(oh *ordered.OHRelease, queries []RangeQuery) ([]float64, error) {
	answers := make([]float64, len(queries))
	for i, q := range queries {
		a, err := oh.Range(q.Lo, q.Hi)
		if err != nil {
			return nil, fmt.Errorf("stream: range query %d: %w", i, err)
		}
		answers[i] = a
	}
	return answers, nil
}

// Releases returns the buffered releases with Seq > since, oldest first.
// When since predates the buffer (evicted releases), it returns what
// remains; Status().FirstSeq tells readers where the buffer starts.
func (st *Stream) Releases(since uint64) []*EpochRelease {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.releasesLocked(since)
}

func (st *Stream) releasesLocked(since uint64) []*EpochRelease {
	// releases[i].Seq == dropped + i + 1, so the first index past `since`
	// is computable directly. The cursor is caller-supplied (the server
	// passes it straight from the URL), so compare in uint64 before any
	// int conversion: a huge cursor means "past everything", never a
	// wrapped negative index.
	start := 0
	if since > st.dropped {
		over := since - st.dropped
		if over >= uint64(len(st.releases)) {
			return nil
		}
		start = int(over)
	}
	return append([]*EpochRelease(nil), st.releases[start:]...)
}

// WaitReleases blocks until at least one release with Seq > since exists
// (returning everything buffered past the cursor), the context is done,
// the stream is stopped (ErrStopped — a shutdown must wake every parked
// waiter promptly, not leave them to their own deadlines), or the stream
// is exhausted with nothing left to wait for.
func (st *Stream) WaitReleases(ctx context.Context, since uint64) ([]*EpochRelease, error) {
	st.waiters.Add(1)
	defer st.waiters.Add(-1)
	for {
		st.mu.Lock()
		rels := st.releasesLocked(since)
		exhausted, ch := st.exhausted, st.notify
		st.mu.Unlock()
		if len(rels) > 0 {
			return rels, nil
		}
		if exhausted {
			return nil, composition.ErrBudgetExceeded
		}
		select {
		case <-ch:
		case <-st.quit:
			return nil, ErrStopped
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// SetJournal installs the write-ahead hook CloseEpoch calls once an
// epoch's releases are computed and charged, before they publish. Install
// it before Start and before the first close; the hook runs under the
// stream's epoch lock, so it must not call back into the stream.
func (st *Stream) SetJournal(fn func(epoch int) error) {
	st.mu.Lock()
	st.journal = fn
	st.mu.Unlock()
}

// State is the serializable progress of a stream: the epoch cursor and the
// published-release buffer. Together with the backing session's
// SessionState (budget ledger + noise streams) and the table's TableState
// it is everything a recovery needs to resume the stream where the
// snapshot left it — cursors intact, future releases bit-for-bit.
type State struct {
	Epoch     int             `json:"epoch"`
	Exhausted bool            `json:"exhausted,omitempty"`
	NextSeq   uint64          `json:"next_seq"`
	Dropped   uint64          `json:"dropped,omitempty"`
	Releases  []*EpochRelease `json:"releases,omitempty"`
}

// ExportState captures the stream's progress. The release pointers are
// shared — published releases are immutable — so the export is cheap.
func (st *Stream) ExportState() State {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.exportLocked()
}

func (st *Stream) exportLocked() State {
	return State{
		Epoch:     st.epoch,
		Exhausted: st.exhausted,
		NextSeq:   st.nextSeq,
		Dropped:   st.dropped,
		Releases:  append([]*EpochRelease(nil), st.releases...),
	}
}

// Snapshot captures the stream's progress and runs f under the same epoch
// lock, so no close can land between the two: recovery checkpoints use f
// to export the backing session's ledger and noise state atomically with
// the epoch cursor.
func (st *Stream) Snapshot(f func() error) (State, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.exportLocked()
	if f != nil {
		if err := f(); err != nil {
			return State{}, err
		}
	}
	return s, nil
}

// RestoreState overwrites the stream's progress with an exported state.
// Only a fresh stream (no closes yet) may be restored, and the release
// buffer must be dense: releases[i].Seq == dropped+i+1, the invariant the
// cursor arithmetic of Releases depends on.
func (st *Stream) RestoreState(s State) error {
	if s.Epoch < 0 || s.NextSeq < s.Dropped {
		return errors.New("stream: invalid restored state")
	}
	for i, rel := range s.Releases {
		if rel == nil || rel.Seq != s.Dropped+uint64(i)+1 {
			return errors.New("stream: restored release buffer is not cursor-dense")
		}
	}
	if len(s.Releases) > 0 && s.Releases[len(s.Releases)-1].Seq != s.NextSeq {
		return errors.New("stream: restored release buffer does not end at the cursor")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.epoch != 0 || st.nextSeq != 0 || len(st.releases) != 0 {
		return errors.New("stream: state restore requires a fresh stream")
	}
	st.epoch = s.Epoch
	st.exhausted = s.Exhausted
	st.nextSeq = s.NextSeq
	st.dropped = s.Dropped
	st.releases = append([]*EpochRelease(nil), s.Releases...)
	return nil
}

// Status is a snapshot of a stream's progress.
type Status struct {
	// Epoch is the next epoch to close (== closes so far).
	Epoch int
	// Exhausted reports that a close was refused for budget and every
	// future close will be.
	Exhausted bool
	// Releases is the number of buffered releases; FirstSeq/LastSeq bound
	// their cursors (0 when empty).
	Releases int
	FirstSeq uint64
	LastSeq  uint64
	// NextEpsilon is the per-kind ε the next close would charge.
	NextEpsilon float64
	// Remaining is the unspent stream budget.
	Remaining float64
	// N is the current dataset cardinality; Events the mutations applied.
	N      int
	Events uint64
	// LastClose is the wall time of the most recent successful epoch close
	// (stream creation time before any); now − LastClose is the epoch lag
	// the metrics endpoint exports.
	LastClose time.Time
	// Waiters is the number of goroutines currently parked in
	// WaitReleases (long-poll release-cursor readers).
	Waiters int
}

// Status returns a snapshot of the stream.
func (st *Stream) Status() Status {
	st.mu.Lock()
	s := Status{
		Epoch:       st.epoch,
		Exhausted:   st.exhausted,
		Releases:    len(st.releases),
		NextEpsilon: st.cfg.epsilonAt(st.epoch),
		Remaining:   st.eng.Accountant().Remaining(),
		LastClose:   st.lastClose,
		Waiters:     int(st.waiters.Load()),
	}
	if len(st.releases) > 0 {
		s.FirstSeq = st.releases[0].Seq
		s.LastSeq = st.releases[len(st.releases)-1].Seq
	}
	st.mu.Unlock()
	s.N = st.tbl.Len()
	s.Events = st.tbl.Applied()
	return s
}

// Start launches the automatic epoch ticker when Config.Interval is
// positive; otherwise it is a no-op (epochs close via CloseEpoch). The
// ticker stops itself at budget exhaustion.
func (st *Stream) Start() {
	st.startOnce.Do(func() {
		if st.cfg.Interval <= 0 {
			close(st.loopDone)
			return
		}
		go func() {
			defer close(st.loopDone)
			t := time.NewTicker(st.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-st.quit:
					return
				case <-t.C:
					rel, err := st.CloseEpoch()
					if errors.Is(err, composition.ErrBudgetExceeded) {
						if l := st.cfg.Logger; l != nil {
							l.Warn("stream ticker stopped: budget exhausted",
								"epoch", st.Status().Epoch, "err", err)
						}
						return
					}
					if errors.Is(err, ErrJournalFailed) {
						// The durable backend is down (journal failures
						// are sticky). Each automatic retry would charge
						// the epoch's ε again and publish nothing —
						// draining the whole budget unseen — so the
						// ticker stops; manual closes still surface the
						// error to the operator.
						if l := st.cfg.Logger; l != nil {
							l.Error("stream ticker stopped: epoch journal failed",
								"epoch", st.Status().Epoch, "err", err)
						}
						return
					}
					if err == nil {
						if l := st.cfg.Logger; l != nil {
							l.Debug("epoch closed",
								"epoch", rel.Epoch, "seq", rel.Seq,
								"epsilon", rel.Epsilon, "remaining", rel.Remaining)
						}
					}
				}
			}
		}()
	})
}

// Stop halts the automatic ticker (if running) and waits for it to exit.
// Safe to call multiple times and without Start.
func (st *Stream) Stop() {
	<-st.Shutdown()
}

// Shutdown is the non-blocking half of Stop: it signals the ticker to
// exit and returns a channel that closes when the loop has. Server.Close
// uses it to signal every stream first and then wait on all of them
// under one deadline. Safe to call multiple times and without Start.
func (st *Stream) Shutdown() <-chan struct{} {
	st.startOnce.Do(func() { close(st.loopDone) }) // never started: nothing to wait on
	st.stopOnce.Do(func() { close(st.quit) })
	return st.loopDone
}
