package stream

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"blowfish/internal/composition"
	"blowfish/internal/domain"
	"blowfish/internal/engine"
	"blowfish/internal/leak"
	"blowfish/internal/noise"
	"blowfish/internal/policy"
	"blowfish/internal/secgraph"
)

// fixture wires a distance-threshold line policy, a seeded single-shard
// engine, a table and an ingestor — the deterministic test harness.
type fixture struct {
	eng *engine.Engine
	tbl *Table
	ing *Ingestor
	ds  *domain.Dataset
}

func newFixture(t *testing.T, size int, budget float64, seed int64, icfg IngestConfig) *fixture {
	t.Helper()
	d, err := domain.Line("v", size)
	if err != nil {
		t.Fatal(err)
	}
	g, err := secgraph.NewDistanceThreshold(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := engine.Compile(policy.New(g))
	if err != nil {
		t.Fatal(err)
	}
	acct, err := composition.NewAccountant(budget)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(plan, acct, noise.NewSource(seed), 1)
	if err != nil {
		t.Fatal(err)
	}
	ds := domain.NewDataset(d)
	tbl, err := NewTable(ds)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := NewIngestor(tbl, icfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ing.Close)
	return &fixture{eng: eng, tbl: tbl, ing: ing, ds: ds}
}

func (f *fixture) stream(t *testing.T, cfg Config) *Stream {
	t.Helper()
	st, err := New(f.eng, f.tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(st.Stop)
	return st
}

func appends(vals ...int) []Event {
	evs := make([]Event, len(vals))
	for i, v := range vals {
		evs[i] = Event{Op: "append", Row: []int{v}}
	}
	return evs
}

func mustSubmit(t *testing.T, ing *Ingestor, evs []Event) {
	t.Helper()
	if _, _, err := ing.Submit(evs); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := ing.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

// TestIngestAppliesEvents pins the event log semantics: appends, upserts
// and deletes land on the dataset in submission order, with sequence
// numbers assigned densely.
func TestIngestAppliesEvents(t *testing.T) {
	f := newFixture(t, 16, 100, 1, IngestConfig{})
	first, last, err := f.ing.Submit(appends(3, 5, 5, 7))
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || last != 4 {
		t.Fatalf("seqs = [%d,%d], want [1,4]", first, last)
	}
	mustSubmit(t, f.ing, []Event{
		{Op: "upsert", ID: 0, Row: []int{9}},
		{Op: "delete", ID: 1},
	})
	f.tbl.RLock()
	got, err := f.ds.Histogram()
	f.tbl.RUnlock()
	if err != nil {
		t.Fatal(err)
	}
	// Started [3 5 5 7]; upsert(0,9) → [9 5 5 7]; delete(1) swaps 7 in →
	// [9 7 5].
	want := map[int]float64{9: 1, 7: 1, 5: 1}
	for v, c := range want {
		if got[v] != c {
			t.Fatalf("hist[%d] = %v, want %v (hist %v)", v, got[v], c, got)
		}
	}
	if n := f.tbl.Len(); n != 3 {
		t.Fatalf("Len = %d, want 3", n)
	}
	if a := f.tbl.Applied(); a != 6 {
		t.Fatalf("Applied = %d, want 6", a)
	}
}

// TestIngestRejectsPoisonEvents asserts a bad tuple id is counted and
// skipped without wedging the events queued behind it.
func TestIngestRejectsPoisonEvents(t *testing.T) {
	f := newFixture(t, 16, 100, 1, IngestConfig{})
	mustSubmit(t, f.ing, []Event{
		{Op: "append", Row: []int{1}},
		{Op: "delete", ID: 99}, // out of range at apply time
		{Op: "append", Row: []int{2}},
	})
	if n := f.tbl.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2 (poison event wedged the stream?)", n)
	}
	stats := f.ing.Stats()
	if stats.Rejected != 1 || stats.LastError == "" {
		t.Fatalf("stats = %+v, want 1 rejection with an error", stats)
	}
	// Validation errors surface synchronously and enqueue nothing.
	if _, _, err := f.ing.Submit([]Event{{Op: "append", Row: []int{999}}}); err == nil {
		t.Fatal("out-of-domain append accepted")
	}
	if _, _, err := f.ing.Submit([]Event{{Op: "compact"}}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// TestIngestClose pins Close semantics: queued events flush, later submits
// are refused.
func TestIngestClose(t *testing.T) {
	f := newFixture(t, 16, 100, 1, IngestConfig{BatchSize: 8, FlushInterval: time.Hour})
	if _, _, err := f.ing.Submit(appends(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	f.ing.Close()
	if n := f.tbl.Len(); n != 3 {
		t.Fatalf("Len after Close = %d, want 3 (Close did not flush)", n)
	}
	if _, _, err := f.ing.Submit(appends(4)); !errors.Is(err, ErrIngestClosed) {
		t.Fatalf("Submit after Close = %v, want ErrIngestClosed", err)
	}
}

// TestEpochReleasesReproducible pins the acceptance criterion: a seeded
// single-shard engine replaying the same events and epoch closes produces
// bit-for-bit identical releases.
func TestEpochReleasesReproducible(t *testing.T) {
	run := func() []*EpochRelease {
		f := newFixture(t, 64, 100, 42, IngestConfig{})
		st := f.stream(t, Config{
			Epsilon:      0.5,
			Kinds:        []ReleaseKind{KindHistogram, KindCumulative, KindRange},
			RangeQueries: []RangeQuery{{Lo: 3, Hi: 17}, {Lo: 0, Hi: 63}},
		})
		mustSubmit(t, f.ing, appends(1, 5, 9, 9, 30))
		if _, err := st.CloseEpoch(); err != nil {
			t.Fatalf("CloseEpoch: %v", err)
		}
		mustSubmit(t, f.ing, appends(12, 12, 40))
		if _, err := st.CloseEpoch(); err != nil {
			t.Fatalf("CloseEpoch: %v", err)
		}
		return st.Releases(0)
	}
	a, b := run(), run()
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("releases = %d/%d, want 2/2", len(a), len(b))
	}
	for i := range a {
		for j := range a[i].Histogram {
			if a[i].Histogram[j] != b[i].Histogram[j] {
				t.Fatalf("release %d: hist[%d] differs: %v vs %v", i, j, a[i].Histogram[j], b[i].Histogram[j])
			}
		}
		for j := range a[i].CumulativeRaw {
			if a[i].CumulativeRaw[j] != b[i].CumulativeRaw[j] {
				t.Fatalf("release %d: cum[%d] differs", i, j)
			}
		}
		for j := range a[i].RangeAnswers {
			if a[i].RangeAnswers[j] != b[i].RangeAnswers[j] {
				t.Fatalf("release %d: range[%d] differs", i, j)
			}
		}
	}
}

// TestBudgetExhaustion pins the other acceptance criterion: a stream
// refuses epoch closes past budget exhaustion with an error wrapping
// ErrBudgetExceeded, stays exhausted, and wakes long-pollers.
func TestBudgetExhaustion(t *testing.T) {
	// Budget 1.0, two kinds at ε=0.25 per epoch → 0.5 per close → exactly
	// two epochs fit.
	f := newFixture(t, 64, 1.0, 7, IngestConfig{})
	st := f.stream(t, Config{Epsilon: 0.25, Kinds: []ReleaseKind{KindHistogram, KindCumulative}})
	mustSubmit(t, f.ing, appends(1, 2, 3))
	for i := 0; i < 2; i++ {
		if _, err := st.CloseEpoch(); err != nil {
			t.Fatalf("close %d: %v", i, err)
		}
	}
	if _, err := st.CloseEpoch(); !errors.Is(err, composition.ErrBudgetExceeded) {
		t.Fatalf("third close = %v, want ErrBudgetExceeded", err)
	}
	s := st.Status()
	if !s.Exhausted || s.Epoch != 2 {
		t.Fatalf("status = %+v, want exhausted at epoch 2", s)
	}
	// A long-poll past the end returns the budget error instead of hanging.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := st.WaitReleases(ctx, s.LastSeq); !errors.Is(err, composition.ErrBudgetExceeded) {
		t.Fatalf("WaitReleases past exhaustion = %v, want ErrBudgetExceeded", err)
	}
}

// TestExplicitScheduleExhausts pins the finite-schedule terminal state: an
// Epsilons list with no base Epsilon to fall back to exhausts the stream
// when it runs out, with the same ErrBudgetExceeded signal budget
// exhaustion gives — the ticker stops and pollers are told it is over.
func TestExplicitScheduleExhausts(t *testing.T) {
	f := newFixture(t, 16, 100, 1, IngestConfig{})
	st := f.stream(t, Config{Epsilons: []float64{0.5, 0.25}})
	mustSubmit(t, f.ing, appends(1, 2))
	for i := 0; i < 2; i++ {
		if _, err := st.CloseEpoch(); err != nil {
			t.Fatalf("close %d: %v", i, err)
		}
	}
	if _, err := st.CloseEpoch(); !errors.Is(err, composition.ErrBudgetExceeded) {
		t.Fatalf("close past schedule = %v, want ErrBudgetExceeded", err)
	}
	if s := st.Status(); !s.Exhausted {
		t.Fatalf("status = %+v, want exhausted", s)
	}
}

// TestReleasesCursorOverflow pins the cursor arithmetic against hostile
// values: a cursor far past the buffer returns nothing, never panics.
func TestReleasesCursorOverflow(t *testing.T) {
	f := newFixture(t, 16, 100, 1, IngestConfig{})
	st := f.stream(t, Config{Epsilon: 0.1})
	mustSubmit(t, f.ing, appends(1))
	if _, err := st.CloseEpoch(); err != nil {
		t.Fatal(err)
	}
	for _, since := range []uint64{1, 2, 1 << 40, ^uint64(0)} {
		if rels := st.Releases(since); len(rels) != 0 {
			t.Fatalf("Releases(%d) = %d releases, want 0", since, len(rels))
		}
	}
	if rels := st.Releases(0); len(rels) != 1 {
		t.Fatalf("Releases(0) = %d, want 1", len(rels))
	}
}

// TestMutateRetagsSlidingWindow pins the Mutate repair contract: a direct
// mutation re-tags every tuple with the current epoch, so a swapped-in
// tuple can never inherit an older tag and expire early.
func TestMutateRetagsSlidingWindow(t *testing.T) {
	f := newFixture(t, 16, 100, 3, IngestConfig{})
	st := f.stream(t, Config{Window: WindowSliding, WindowEpochs: 2, Epsilon: 1})
	mustSubmit(t, f.ing, appends(1, 2, 3))
	if _, err := st.CloseEpoch(); err != nil { // epoch 0 closes; tuples tagged 0
		t.Fatal(err)
	}
	mustSubmit(t, f.ing, appends(4)) // tagged epoch 1
	// Direct mutation with a swap-removal: without the repair, the epoch-1
	// tuple swapped into slot 0 would keep the removed tuple's tag 0.
	err := f.tbl.Mutate(func(ds *domain.Dataset) error { return ds.Remove(0) })
	if err != nil {
		t.Fatal(err)
	}
	// Close epochs 1 and 2: at epoch 2 the cutoff expires tags < 1, which
	// after the re-tag (everything now tagged 1) must expire nothing.
	if _, err := st.CloseEpoch(); err != nil {
		t.Fatal(err)
	}
	rel, err := st.CloseEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if rel.N != 3 {
		t.Fatalf("N after retag = %d, want 3 (live tuple expired early)", rel.N)
	}
}

// TestEpsilonSchedule pins the explicit-override and decay arithmetic.
func TestEpsilonSchedule(t *testing.T) {
	f := newFixture(t, 16, 100, 1, IngestConfig{})
	st := f.stream(t, Config{Epsilon: 0.4, Decay: 0.5, Epsilons: []float64{1.0}})
	mustSubmit(t, f.ing, appends(1))
	want := []float64{1.0, 0.4 * 0.5, 0.4 * 0.25}
	for i, w := range want {
		rel, err := st.CloseEpoch()
		if err != nil {
			t.Fatalf("close %d: %v", i, err)
		}
		if rel.Epsilon != w {
			t.Fatalf("epoch %d epsilon = %v, want %v", i, rel.Epsilon, w)
		}
	}
}

// TestTumblingWindow asserts each epoch covers only its own events.
func TestTumblingWindow(t *testing.T) {
	f := newFixture(t, 16, 100, 3, IngestConfig{})
	st := f.stream(t, Config{Window: WindowTumbling, Epsilon: 1})
	mustSubmit(t, f.ing, appends(1, 2, 3, 4, 5))
	rel, err := st.CloseEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if rel.N != 5 {
		t.Fatalf("epoch 0 N = %d, want 5", rel.N)
	}
	mustSubmit(t, f.ing, appends(7, 8))
	rel, err = st.CloseEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if rel.N != 2 {
		t.Fatalf("epoch 1 N = %d, want 2 (tumbling reset failed)", rel.N)
	}
}

// TestSlidingWindow asserts tuples expire once they age past the width.
func TestSlidingWindow(t *testing.T) {
	f := newFixture(t, 16, 100, 3, IngestConfig{})
	st := f.stream(t, Config{Window: WindowSliding, WindowEpochs: 2, Epsilon: 1})
	mustSubmit(t, f.ing, appends(1, 2, 3, 4))
	rel, err := st.CloseEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if rel.N != 4 {
		t.Fatalf("epoch 0 N = %d, want 4", rel.N)
	}
	mustSubmit(t, f.ing, appends(5, 6))
	rel, err = st.CloseEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if rel.N != 6 {
		t.Fatalf("epoch 1 N = %d, want 6 (window [0,1])", rel.N)
	}
	mustSubmit(t, f.ing, appends(7))
	rel, err = st.CloseEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if rel.N != 3 {
		t.Fatalf("epoch 2 N = %d, want 3 (epoch-0 tuples expired)", rel.N)
	}
}

// TestWaitReleasesLongPoll asserts a blocked reader wakes on the next
// epoch close and receives everything past its cursor.
func TestWaitReleasesLongPoll(t *testing.T) {
	f := newFixture(t, 16, 100, 5, IngestConfig{})
	st := f.stream(t, Config{Epsilon: 0.1})
	mustSubmit(t, f.ing, appends(1, 2))
	got := make(chan []*EpochRelease, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		rels, err := st.WaitReleases(ctx, 0)
		if err != nil {
			t.Errorf("WaitReleases: %v", err)
		}
		got <- rels
	}()
	time.Sleep(10 * time.Millisecond) // let the poller block
	if _, err := st.CloseEpoch(); err != nil {
		t.Fatal(err)
	}
	select {
	case rels := <-got:
		if len(rels) != 1 || rels[0].Seq != 1 {
			t.Fatalf("long-poll returned %d releases (first seq %d), want 1 @ seq 1", len(rels), rels[0].Seq)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll never woke")
	}
}

// TestAutomaticScheduler exercises Start/Stop: epochs close on the ticker
// until the budget runs out, and Stop leaves no goroutine behind (the
// -race build would catch unsynchronized stragglers).
func TestAutomaticScheduler(t *testing.T) {
	f := newFixture(t, 16, 0.3, 5, IngestConfig{})
	st := f.stream(t, Config{Epsilon: 0.1, Interval: time.Millisecond})
	mustSubmit(t, f.ing, appends(1, 2, 3))
	st.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := st.WaitReleases(ctx, 0); err != nil {
		t.Fatalf("no automatic release arrived: %v", err)
	}
	// Budget 0.3 at ε=0.1 → exactly three closes, then the ticker stops
	// itself; give it time to hit the wall.
	deadline := time.Now().Add(10 * time.Second)
	for st.Status().Epoch < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st.Stop()
	if got := st.Status().Epoch; got != 3 {
		t.Fatalf("epochs closed = %d, want 3", got)
	}
}

// TestConfigValidation asserts unserveable configurations fail at New.
func TestConfigValidation(t *testing.T) {
	f := newFixture(t, 16, 100, 1, IngestConfig{})
	bad := []Config{
		{},                                  // no epsilon schedule
		{Epsilon: 1, Window: "hopping"},     // unknown window
		{Epsilon: 1, Window: WindowSliding}, // sliding without width
		{Epsilon: 1, Kinds: []ReleaseKind{"quantile"}},
		{Epsilon: 1, Kinds: []ReleaseKind{KindRange}},                                       // no queries
		{Epsilon: 1, Kinds: []ReleaseKind{KindRange}, RangeQueries: []RangeQuery{{5, 900}}}, // out of domain
		{Epsilon: 1, Epsilons: []float64{0.5, -1}},                                          // bad override
	}
	for i, cfg := range bad {
		if _, err := New(f.eng, f.tbl, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestStreamHammer interleaves concurrent event ingestion, epoch closes,
// direct Dataset mutation (the generation-counter rebuild path) and status
// reads under -race. Values are not asserted beyond internal consistency —
// the point is that no interleaving tears state.
func TestStreamHammer(t *testing.T) {
	leak.Check(t)
	f := newFixture(t, 64, 1e9, 11, IngestConfig{BatchSize: 32, FlushInterval: 100 * time.Microsecond})
	st := f.stream(t, Config{Epsilon: 0.01, Kinds: []ReleaseKind{KindHistogram, KindCumulative}})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := f.ing.Submit(appends(i%64, (i*7)%64)); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // direct mutation through the table's escape hatch
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			err := f.tbl.Mutate(func(ds *domain.Dataset) error {
				if err := ds.Add(domain.Point(i % 64)); err != nil {
					return err
				}
				if ds.Len() > 1 {
					return ds.Remove(0)
				}
				return nil
			})
			if err != nil {
				t.Errorf("mutate: %v", err)
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	wg.Add(1)
	go func() { // status + cursor readers
		defer wg.Done()
		var since uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, rel := range st.Releases(since) {
				if rel.N < 0 || len(rel.Histogram) != 64 {
					t.Errorf("torn release: %+v", rel)
					return
				}
				since = rel.Seq
			}
			_ = st.Status()
			time.Sleep(100 * time.Microsecond)
		}
	}()
	for i := 0; i < 30; i++ {
		if _, err := st.CloseEpoch(); err != nil {
			t.Fatalf("close %d: %v", i, err)
		}
		time.Sleep(500 * time.Microsecond)
	}
	close(stop)
	wg.Wait()
	if err := f.ing.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Final consistency: the index must agree with a rebuild after all the
	// interleaving (including the direct-mutation rebuild path).
	f.tbl.RLock()
	defer f.tbl.RUnlock()
	want, err := f.ds.Histogram()
	if err != nil {
		t.Fatal(err)
	}
	idx, err := f.eng.Index(f.ds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := idx.Histogram()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hist[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
