// Package stream is the streaming ingestion and continual-release
// subsystem: an append/upsert/delete event log applied onto the release
// engine's incremental DatasetIndex by a single batching writer, and an
// epoch scheduler that publishes noisy releases from the compiled plan on a
// per-epoch epsilon schedule until the stream's privacy budget is spent.
//
// The paper makes continual observation affordable in exactly two ways this
// package operationalizes: policy-calibrated sensitivities (Sec. 6, Lemma
// 6.1) keep each epoch's noise small, and sequential composition (Theorem
// 3.6 / 4.1) turns a total ε budget into a schedule of per-epoch charges
// through composition.Accountant. The subsystem is three pieces:
//
//   - Table wraps one Dataset behind a readers-writer lock: ingestion and
//     window expiry take the write side, releases the read side, so the
//     engine's unsynchronized Dataset contract holds under full server
//     concurrency no matter how many plans index the dataset.
//   - Ingestor is the event log: it assigns sequence numbers, batches
//     events, and applies them from a single writer goroutine through
//     DatasetIndex.ApplyBatch, amortizing the index lock over whole batches
//     instead of paying it per tuple.
//   - Stream closes epochs: tumbling, sliding or cumulative windows, one
//     noisy release set per epoch close, published to a cursor-addressed
//     buffer that readers long-poll.
package stream

import (
	"errors"
	"fmt"
	"sync"

	"blowfish/internal/domain"
	"blowfish/internal/engine"
)

// ErrJournalFailed marks a batch or epoch close refused because its
// write-ahead record could not be appended: the operation was NOT applied
// and must not be acknowledged. Journal failures are sticky at the log
// layer (the on-disk tail may be torn), so callers treat this as the
// durable backend being down, not a per-item rejection.
var ErrJournalFailed = errors.New("stream: write-ahead journal append failed")

// Table is the synchronization point for one streamed dataset. The engine's
// DatasetIndex only locks its own caches — the Dataset underneath is
// unsynchronized — so every mutation path (ingest batches, window expiry,
// direct Mutate) takes the table's write lock and every release path takes
// the read lock. Any number of plans may index the dataset; they all read
// under the same lock.
type Table struct {
	mu sync.RWMutex
	ds *domain.Dataset
	// idx, when bound, keeps one plan's count vectors incremental under
	// ingestion; other plans' indexes rebuild via the generation counter.
	idx *engine.DatasetIndex
	// applied counts mutations applied through the table since creation.
	applied uint64
	// epochOf mirrors the dataset's tuple order with the epoch each tuple
	// was ingested in (swap semantics mirrored from Dataset.Remove); nil
	// until TrackEpochs. curEpoch is the epoch new tuples are tagged with.
	epochOf  []int32
	curEpoch int32
	tracking bool
	// lastSeq is the highest event sequence number whose batch has been
	// applied through ApplyLogged — the recovery cursor: a snapshot taken
	// under the table lock pairs the tuples with exactly this seq, so WAL
	// replay knows which event batches the snapshot already reflects.
	lastSeq uint64
	// journal, when set, is called write-ahead: under the same lock
	// acquisition that applies the batch, before any mutation lands. A
	// journal error rejects the whole batch, so no event is ever applied
	// without being durable first.
	journal func(firstSeq uint64, muts []engine.Mutation) error
}

// NewTable wraps ds. The dataset must not be mutated except through the
// table (or under Mutate) once streaming begins.
func NewTable(ds *domain.Dataset) (*Table, error) {
	if ds == nil {
		return nil, errors.New("stream: nil dataset")
	}
	return &Table{ds: ds}, nil
}

// Dataset returns the wrapped dataset. Read it only under RLock; mutate it
// only through Mutate.
func (t *Table) Dataset() *domain.Dataset { return t.ds }

// RLock takes the table's read lock. Every release over the dataset —
// through any session or engine — must run between RLock and RUnlock so it
// cannot observe a torn mutation batch.
func (t *Table) RLock() { t.mu.RLock() }

// RUnlock releases the read lock.
func (t *Table) RUnlock() { t.mu.RUnlock() }

// BindIndex routes subsequent batches through idx, keeping that plan's
// count vectors incremental instead of rebuilt per release. Binding a new
// index (a second stream over another policy) is allowed: the previous
// plan's index falls back to generation-triggered rebuilds.
func (t *Table) BindIndex(idx *engine.DatasetIndex) {
	t.mu.Lock()
	t.idx = idx
	t.mu.Unlock()
}

// Unbind drops the bound index if it is still idx, so batches stop
// maintaining count vectors for a stream that no longer exists. A no-op
// when another stream has since bound its own index.
func (t *Table) Unbind(idx *engine.DatasetIndex) {
	t.mu.Lock()
	if t.idx == idx {
		t.idx = nil
	}
	t.mu.Unlock()
}

// TrackEpochs starts tagging ingested tuples with the current epoch, the
// bookkeeping sliding windows expire against. Tuples already present are
// tagged with the current epoch.
func (t *Table) TrackEpochs() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tracking {
		return
	}
	t.tracking = true
	t.epochOf = make([]int32, t.ds.Len())
	for i := range t.epochOf {
		t.epochOf[i] = t.curEpoch
	}
}

// Len returns the dataset cardinality under the read lock.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.ds.Len()
}

// Applied returns the number of mutations applied through the table.
func (t *Table) Applied() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.applied
}

// ApplyBatch applies mutations in order under one write-lock acquisition,
// through the bound index when present (one index-lock acquisition per
// batch) and directly onto the dataset otherwise. On the first failing
// mutation it stops, returning how many applied and the error; the applied
// prefix stays applied.
func (t *Table) ApplyBatch(muts []engine.Mutation) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.applyLocked(muts)
}

func (t *Table) applyLocked(muts []engine.Mutation) (int, error) {
	var n int
	var err error
	if t.idx != nil {
		n, err = t.idx.ApplyBatch(muts)
	} else {
		for _, m := range muts {
			switch m.Op {
			case engine.MutAdd:
				err = t.ds.Add(m.P)
			case engine.MutSet:
				err = t.ds.Set(m.Index, m.P)
			case engine.MutRemove:
				err = t.ds.Remove(m.Index)
			default:
				err = errors.New("stream: unknown mutation op")
			}
			if err != nil {
				break
			}
			n++
		}
	}
	if t.tracking {
		for _, m := range muts[:n] {
			switch m.Op {
			case engine.MutAdd:
				t.epochOf = append(t.epochOf, t.curEpoch)
			case engine.MutRemove:
				last := len(t.epochOf) - 1
				t.epochOf[m.Index] = t.epochOf[last]
				t.epochOf = t.epochOf[:last]
			}
		}
	}
	t.applied += uint64(n)
	return n, err
}

// SetJournal installs the write-ahead hook ApplyLogged calls before
// applying a batch. Install it before ingestion starts (or while the
// writer is quiescent); the hook runs under the table's write lock, so it
// must not take the table lock itself.
func (t *Table) SetJournal(fn func(firstSeq uint64, muts []engine.Mutation) error) {
	t.mu.Lock()
	t.journal = fn
	t.mu.Unlock()
}

// LastSeq returns the highest event sequence number applied through
// ApplyLogged.
func (t *Table) LastSeq() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lastSeq
}

// ApplyLogged is the ingestion path for sequence-numbered batches: it
// journals the batch write-ahead (when a journal is installed), applies the
// mutations skipping individually rejected ones (bad tuple ids must not
// wedge the stream), and records the batch's last sequence number — all
// under one write-lock acquisition, so a concurrent snapshot can never
// observe the tuples without the cursor or vice versa. A journal error
// rejects the whole batch unapplied.
func (t *Table) ApplyLogged(firstSeq uint64, muts []engine.Mutation) (applied, rejected int, lastErr error) {
	if len(muts) == 0 {
		return 0, 0, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.journal != nil {
		if err := t.journal(firstSeq, muts); err != nil {
			return 0, len(muts), fmt.Errorf("%w: %w", ErrJournalFailed, err)
		}
	}
	rest := muts
	for len(rest) > 0 {
		n, err := t.applyLocked(rest)
		applied += n
		if err == nil {
			break
		}
		rejected++
		lastErr = err
		rest = rest[n+1:]
	}
	t.lastSeq = firstSeq + uint64(len(muts)) - 1
	return applied, rejected, lastErr
}

// TableState is the serializable streaming state of a table, captured
// together with the tuples by Snapshot.
type TableState struct {
	Applied  uint64  `json:"applied"`
	LastSeq  uint64  `json:"last_seq"`
	CurEpoch int32   `json:"cur_epoch"`
	Tracking bool    `json:"tracking,omitempty"`
	EpochOf  []int32 `json:"epoch_of,omitempty"`
}

// Snapshot captures the tuples and the streaming state under one read-lock
// acquisition: because ApplyLogged journals, applies and advances the
// cursor under the corresponding write lock, the returned pair is
// consistent — the points reflect exactly the batches up to LastSeq.
func (t *Table) Snapshot() ([]domain.Point, TableState) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	st := TableState{
		Applied:  t.applied,
		LastSeq:  t.lastSeq,
		CurEpoch: t.curEpoch,
		Tracking: t.tracking,
	}
	if t.tracking {
		st.EpochOf = append([]int32(nil), t.epochOf...)
	}
	return t.ds.Points(), st
}

// RestoreState overwrites the streaming bookkeeping with a snapshot's
// state. The dataset must already hold the snapshot's tuples (recovery
// rebuilds it before calling); with tracking on, the tag vector must cover
// them exactly.
func (t *Table) RestoreState(st TableState) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st.Tracking && len(st.EpochOf) != t.ds.Len() {
		return errors.New("stream: restored epoch tags do not cover the dataset")
	}
	t.applied = st.Applied
	t.lastSeq = st.LastSeq
	t.curEpoch = st.CurEpoch
	t.tracking = st.Tracking
	if st.Tracking {
		t.epochOf = append([]int32(nil), st.EpochOf...)
	} else {
		t.epochOf = nil
	}
	return nil
}

// Mutate runs f with exclusive access to the dataset — the escape hatch for
// direct Dataset mutation (tests, repairs). Mutations made by f advance the
// dataset's generation counter, so bound indexes rebuild on next read. With
// epoch tracking on, any mutation by f re-tags every tuple with the current
// epoch: the table cannot see which slots f's Removes swapped, and a stale
// tag on a swapped-in tuple would expire live data early, so the repair is
// uniformly conservative — sliding windows age the whole dataset from now.
func (t *Table) Mutate(f func(ds *domain.Dataset) error) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	gen := t.ds.Generation()
	err := f(t.ds)
	if t.tracking && t.ds.Generation() != gen {
		if cap(t.epochOf) < t.ds.Len() {
			t.epochOf = make([]int32, t.ds.Len())
		}
		t.epochOf = t.epochOf[:t.ds.Len()]
		for i := range t.epochOf {
			t.epochOf[i] = t.curEpoch
		}
	}
	return err
}

// AdvanceEpoch moves the table to the next ingestion epoch and returns it.
func (t *Table) AdvanceEpoch() int32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.curEpoch++
	return t.curEpoch
}

// ExpireBefore removes every tuple ingested in an epoch before cutoff,
// returning how many were removed. It requires TrackEpochs. The backward
// scan cooperates with Dataset.Remove's swap semantics: slots above the
// cursor are already settled, so each removal swaps in a tuple that keeps
// its (already examined) tag.
func (t *Table) ExpireBefore(cutoff int32) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.tracking {
		return 0, errors.New("stream: epoch tracking is not enabled")
	}
	var muts []engine.Mutation
	for i := len(t.epochOf) - 1; i >= 0; i-- {
		if t.epochOf[i] < cutoff {
			muts = append(muts, engine.Mutation{Op: engine.MutRemove, Index: i})
		}
	}
	return t.applyLocked(muts)
}

// Reset removes every tuple — the tumbling-window close. The removals go
// through the normal batch path so bound indexes stay incremental.
func (t *Table) Reset() (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.ds.Len()
	muts := make([]engine.Mutation, n)
	for i := range muts {
		muts[i] = engine.Mutation{Op: engine.MutRemove, Index: n - 1 - i}
	}
	return t.applyLocked(muts)
}
