package wal

import (
	"testing"
)

// BenchmarkWALAppend measures append throughput per fsync policy: the cost
// a durable server pays per journaled record (batched ingest amortizes one
// append across a whole event batch).
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 256)
	for _, pol := range []FsyncPolicy{FsyncNever, FsyncInterval, FsyncAlways} {
		b.Run(pol.String(), func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{Fsync: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(1, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALReplay measures raw log replay speed — the recovery floor
// when no snapshot bounds the tail.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	const records = 10000
	payload := make([]byte, 256)
	for i := 0; i < records; i++ {
		if _, err := l.Append(1, payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := Replay(dir, 0, func(Record) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("replayed %d records, want %d", n, records)
		}
	}
	b.ReportMetric(records, "records/op")
}
