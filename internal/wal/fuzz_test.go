package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode drives the record decoder with arbitrary byte streams: it
// must never panic, never allocate unboundedly (the length prefix is
// capped), and on a stream that begins with valid records it must surface
// exactly that prefix. Corrupt-record handling is the crash-recovery
// foundation, so this target runs in CI (-fuzztime smoke) to keep it from
// bit-rotting.
func FuzzWALDecode(f *testing.F) {
	var seed []byte
	seed = appendRecord(seed, 1, 3, []byte("hello"))
	seed = appendRecord(seed, 2, 4, nil)
	seed = appendRecord(seed, 3, 5, bytes.Repeat([]byte{0xab}, 300))
	f.Add(seed)
	f.Add(seed[:len(seed)-4])                         // torn tail
	f.Add([]byte{})                                   // empty
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length prefix
	mid := append([]byte(nil), seed...)
	mid[len(mid)/2] ^= 0x01
	f.Add(mid) // bit flip mid-stream

	f.Fuzz(func(t *testing.T, data []byte) {
		var decoded []Record
		end, err := decodeStream(bytes.NewReader(data), 1, 0, func(r Record) error {
			decoded = append(decoded, Record{LSN: r.LSN, Kind: r.Kind, Data: append([]byte(nil), r.Data...)})
			return nil
		})
		if err != nil {
			t.Fatalf("decodeStream returned an error for a pure byte stream: %v", err)
		}
		// Whatever decoded must re-encode to a prefix of the input: the
		// decoder can never invent records.
		var re []byte
		for _, r := range decoded {
			re = appendRecord(re, r.LSN, r.Kind, r.Data)
		}
		if !bytes.HasPrefix(data, re) {
			t.Fatalf("decoded records are not a prefix of the input (%d records, %d bytes vs %d)", len(decoded), len(re), len(data))
		}
		// LSNs are dense from 1.
		for i, r := range decoded {
			if r.LSN != uint64(i+1) {
				t.Fatalf("record %d has lsn %d", i, r.LSN)
			}
		}
		if end.last != uint64(len(decoded)) {
			t.Fatalf("end.last = %d with %d records", end.last, len(decoded))
		}
	})
}
