package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot file layout:
//
//	"BFSNAP1\n" [u64 lsn] [u32 crc32c of payload] [payload]
//
// The file is written to a temp name, fsynced, then renamed into place and
// the directory fsynced, so a crash mid-write can never shadow an older
// valid snapshot with a torn new one.

// WriteSnapshot durably writes a snapshot covering every record with
// LSN <= lsn and returns its path.
func WriteSnapshot(dir string, lsn uint64, payload []byte) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("%s%016x%s", snapPrefix, lsn, snapSuffix)
	path := filepath.Join(dir, name)
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	hdr := make([]byte, 0, len(snapMagic)+12)
	hdr = append(hdr, snapMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, lsn)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(payload, castagnoli))
	if _, err := tmp.Write(hdr); err != nil {
		tmp.Close()
		return "", err
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return path, nil
}

// LatestSnapshot loads the newest valid snapshot in dir, returning its LSN
// boundary and payload. A snapshot that fails its checksum is skipped in
// favor of the next older one; (0, nil, nil) means no snapshot exists (a
// cold start: replay the whole log).
func LatestSnapshot(dir string) (uint64, []byte, error) {
	snaps, err := listSnapshots(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, nil
		}
		return 0, nil, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		lsn, payload, err := readSnapshot(filepath.Join(dir, snaps[i].name))
		if err == nil {
			return lsn, payload, nil
		}
	}
	if len(snaps) > 0 {
		return 0, nil, fmt.Errorf("%w: every snapshot in %s failed validation", ErrCorrupt, dir)
	}
	return 0, nil, nil
}

func readSnapshot(path string) (uint64, []byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	hdrLen := len(snapMagic) + 12
	if len(b) < hdrLen || string(b[:len(snapMagic)]) != snapMagic {
		return 0, nil, fmt.Errorf("%w: snapshot %s has a bad header", ErrCorrupt, path)
	}
	lsn := binary.LittleEndian.Uint64(b[len(snapMagic):])
	crc := binary.LittleEndian.Uint32(b[len(snapMagic)+8:])
	payload := b[hdrLen:]
	if crc32.Checksum(payload, castagnoli) != crc {
		return 0, nil, fmt.Errorf("%w: snapshot %s fails its checksum", ErrCorrupt, path)
	}
	return lsn, payload, nil
}

type snapFile struct {
	name string
	lsn  uint64
}

// listSnapshots returns the snapshots in dir sorted by LSN, oldest first.
func listSnapshots(dir string) ([]snapFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps []snapFile
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		hexpart := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
		lsn, err := strconv.ParseUint(hexpart, 16, 64)
		if err != nil {
			continue
		}
		snaps = append(snaps, snapFile{name: name, lsn: lsn})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].lsn < snaps[j].lsn })
	return snaps, nil
}

// sweepTempSnapshots removes snapshot temp files orphaned by a crash
// between CreateTemp and the rename in WriteSnapshot. Best-effort: Open
// calls it once per boot so repeated crash cycles cannot accumulate
// full-state-sized dead files.
func sweepTempSnapshots(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasPrefix(name, snapPrefix) && strings.Contains(name, snapSuffix+".tmp-") {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
}

// pruneSnapshots deletes all but the keep newest snapshots.
func pruneSnapshots(dir string, keep int) error {
	snaps, err := listSnapshots(dir)
	if err != nil {
		return err
	}
	for i := 0; i < len(snaps)-keep; i++ {
		if err := os.Remove(filepath.Join(dir, snaps[i].name)); err != nil {
			return err
		}
	}
	return nil
}
