// Package wal is the durability layer beneath the policy-release server: an
// append-only, CRC-checked, segmented write-ahead log plus point-in-time
// snapshots. The server journals every state-changing operation (registry
// mutations, budget charges, ingest batches, epoch closes) before
// acknowledging it, and recovers after a crash by loading the latest
// snapshot and replaying the log tail.
//
// Durable budget accounting is a privacy requirement, not a convenience:
// Blowfish's guarantee (Theorem 4.1) is cumulative, so a server that forgot
// its charges on restart would answer releases the pre-crash server had
// already paid for — silently doubling the privacy loss. The log is
// therefore written ahead of the acknowledgement: an operation the client
// saw succeed is on disk (under the fsync=always policy) before the
// response leaves the server.
//
// On-disk layout (all in one directory):
//
//	wal-<firstLSN 16-hex>.log   log segments, first record's LSN in the name
//	snap-<LSN 16-hex>.db        snapshots, covering every record with lsn <= LSN
//
// Record framing, little-endian:
//
//	[u32 length][u32 crc32c][u64 lsn][u8 kind][payload]
//
// where length counts the lsn+kind+payload bytes and the CRC (Castagnoli)
// covers the same range. A record that fails its length or CRC check ends
// the readable log: in the active (last) segment that is the expected torn
// tail of a crash and is truncated away on Open; in an earlier segment it
// is corruption and Open fails loudly.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"blowfish/internal/metrics"
)

// FsyncPolicy selects when appended records are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: an acknowledged record survives
	// kill -9 and power loss. The durability default.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a timer (Options.FsyncInterval): bounded data
	// loss, much higher append throughput.
	FsyncInterval
	// FsyncNever leaves syncing to the operating system: survives process
	// crashes (the page cache persists) but not power loss.
	FsyncNever
)

// ParseFsyncPolicy parses the -fsync flag values "always", "interval" and
// "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
	}
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// Options tunes a Log. The zero value is usable: fsync=always.
type Options struct {
	Fsync FsyncPolicy
	// FsyncInterval is the timer period for FsyncInterval; defaults to
	// 100ms.
	FsyncInterval time.Duration
	// Metrics, when non-nil, instruments the log. Appends already
	// serialize on the log mutex, so the instrument updates add a few
	// atomic operations to an I/O-bound path.
	Metrics *Metrics
}

// Metrics are the pre-resolved instruments a Log reports into. Any field
// may be nil.
type Metrics struct {
	// FsyncSeconds observes every fsync of the active segment — the
	// dominant cost of the fsync=always policy and the first thing to
	// look at when append latency moves.
	FsyncSeconds *metrics.Histogram
	// Appends and Bytes count appended records and their encoded bytes
	// (framing included).
	Appends *metrics.Counter
	Bytes   *metrics.Counter
	// Segments tracks the live segment-file count (rotations up,
	// checkpoint retirement down).
	Segments *metrics.Gauge
}

func (m *Metrics) observeFsync(start time.Time) {
	if m != nil && m.FsyncSeconds != nil {
		m.FsyncSeconds.ObserveSince(start)
	}
}

func (m *Metrics) countAppend(n int) {
	if m == nil {
		return
	}
	if m.Appends != nil {
		m.Appends.Inc()
	}
	if m.Bytes != nil {
		m.Bytes.Add(uint64(n))
	}
}

func (m *Metrics) addSegments(delta int64) {
	if m != nil && m.Segments != nil {
		m.Segments.Add(delta)
	}
}

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: log closed")

// ErrCorrupt reports corruption outside the torn tail of the active
// segment — a non-final segment with an unreadable record, or a snapshot
// that fails its checksum with no older snapshot to fall back to.
var ErrCorrupt = errors.New("wal: corrupt")

// maxRecordBytes bounds a single record so a corrupt (or adversarial)
// length prefix cannot force a multi-gigabyte allocation during replay.
const maxRecordBytes = 64 << 20

const (
	headerBytes   = 4 + 4  // length + crc
	overheadBytes = 8 + 1  // lsn + kind inside the length
	segPrefix     = "wal-" // wal-<firstLSN>.log
	segSuffix     = ".log"
	snapPrefix    = "snap-" // snap-<LSN>.db
	snapSuffix    = ".db"
	snapMagic     = "BFSNAP1\n"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one decoded log entry.
type Record struct {
	LSN  uint64
	Kind byte
	Data []byte
}

// Log is an append-only segmented write-ahead log. It is safe for
// concurrent use; appends serialize on an internal mutex.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File
	buf    []byte // scratch encode buffer, reused under mu
	lsn    uint64 // last assigned LSN
	closed bool
	failed error // sticky write error: the tail may be torn, stop appending
	dirty  bool  // unsynced appends (interval/never policies)

	flushQuit chan struct{}
	flushDone chan struct{}
}

// Open opens (or creates) the log in dir, validating existing segments and
// truncating a torn tail left by a crash. The returned log appends after
// the last valid record; Replay iterates what survived.
func Open(dir string, opts Options) (*Log, error) {
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 100 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sweepTempSnapshots(dir)
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	if len(segs) == 0 {
		if err := l.openSegment(1); err != nil {
			return nil, err
		}
	} else {
		// Validate every segment; only the last may have a torn tail.
		last := uint64(0)
		for i, seg := range segs {
			final := i == len(segs)-1
			end, validBytes, err := scanSegment(filepath.Join(dir, seg.name), seg.start, last)
			if err != nil {
				return nil, err
			}
			if end.torn {
				if !final {
					return nil, fmt.Errorf("%w: segment %s has unreadable records before the active tail", ErrCorrupt, seg.name)
				}
				if err := os.Truncate(filepath.Join(dir, seg.name), validBytes); err != nil {
					return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.name, err)
				}
			}
			last = advance(last, seg, end)
		}
		l.lsn = last
		f, err := os.OpenFile(filepath.Join(dir, segs[len(segs)-1].name), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		l.f = f
		opts.Metrics.addSegments(int64(len(segs)))
	}
	if opts.Fsync == FsyncInterval {
		l.flushQuit = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// LastLSN returns the LSN of the most recently appended record (0 when the
// log is empty).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// Append writes one record and, under fsync=always, forces it to stable
// storage before returning. The assigned LSN is returned. After a write
// error the log is failed: every subsequent Append returns the same error,
// because the on-disk tail may be torn mid-record.
func (l *Log) Append(kind byte, data []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.failed != nil {
		return 0, l.failed
	}
	if len(data) > maxRecordBytes-overheadBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d byte cap", len(data), maxRecordBytes)
	}
	lsn := l.lsn + 1
	l.buf = appendRecord(l.buf[:0], lsn, kind, data)
	if _, err := l.f.Write(l.buf); err != nil {
		l.failed = fmt.Errorf("wal: append failed, log is read-only: %w", err)
		return 0, l.failed
	}
	l.lsn = lsn
	if l.opts.Fsync == FsyncAlways {
		start := time.Time{}
		if l.opts.Metrics != nil {
			start = time.Now()
		}
		if err := l.f.Sync(); err != nil {
			l.failed = fmt.Errorf("wal: fsync failed, log is read-only: %w", err)
			return 0, l.failed
		}
		if l.opts.Metrics != nil {
			l.opts.Metrics.observeFsync(start)
		}
	} else {
		l.dirty = true
	}
	l.opts.Metrics.countAppend(len(l.buf))
	return lsn, nil
}

// Sync forces everything appended so far to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.closed || l.f == nil {
		return nil
	}
	if !l.dirty {
		return nil
	}
	start := time.Time{}
	if l.opts.Metrics != nil {
		start = time.Now()
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.opts.Metrics.observeFsync(start)
	l.dirty = false
	return nil
}

// flushLoop is the FsyncInterval timer goroutine.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.flushQuit:
			return
		case <-t.C:
			_ = l.Sync()
		}
	}
}

// Close syncs and closes the log. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.mu.Unlock()
	if l.flushQuit != nil {
		close(l.flushQuit)
		<-l.flushDone
	}
	return err
}

// Replay calls fn, in LSN order, for every record with LSN > after. It
// reads the segment files directly, so it may run before any Append but
// must not run concurrently with Checkpoint.
func (l *Log) Replay(after uint64, fn func(Record) error) error {
	return Replay(l.dir, after, fn)
}

// Replay iterates the records of the log in dir with LSN > after. The torn
// tail of the final segment (already truncated by Open, but Replay is also
// usable on a directory no Log has opened) ends the iteration without
// error; unreadable records elsewhere fail with ErrCorrupt.
func Replay(dir string, after uint64, fn func(Record) error) error {
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	last := uint64(0)
	for i, seg := range segs {
		final := i == len(segs)-1
		f, err := os.Open(filepath.Join(dir, seg.name))
		if err != nil {
			return err
		}
		end, ferr := decodeStream(f, seg.start, last, func(r Record) error {
			if r.LSN > after {
				return fn(r)
			}
			return nil
		})
		f.Close()
		if ferr != nil {
			return ferr
		}
		if end.torn && !final {
			return fmt.Errorf("%w: segment %s has unreadable records before the active tail", ErrCorrupt, seg.name)
		}
		last = advance(last, seg, end)
	}
	return nil
}

// advance moves the LSN high-water mark past a scanned segment. An empty
// segment still advances it: its filename records the next LSN, and
// forgetting that after a checkpoint retired every record would hand
// already-covered LSNs to new appends — which replay (correctly) skips,
// silently losing acknowledged operations on the restart after next.
func advance(last uint64, seg segment, end streamEnd) uint64 {
	if end.last > last {
		last = end.last
	}
	if seg.start > 0 && seg.start-1 > last {
		last = seg.start - 1
	}
	return last
}

// Checkpoint installs a snapshot boundary: every record with LSN <= lsn is
// covered by a snapshot the caller has durably written. The active segment
// is rotated and every segment whose records all precede the boundary is
// deleted, together with all but the two newest snapshots.
func (l *Log) Checkpoint(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// Rotate so the boundary test below can retire the previous active
	// segment once a later checkpoint passes it.
	if err := l.rotateLocked(); err != nil {
		return err
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	// A segment holds records [start_i, start_{i+1}); it is retired when its
	// successor starts at or before the boundary's successor.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].start <= lsn+1 {
			if err := os.Remove(filepath.Join(l.dir, segs[i].name)); err != nil {
				return err
			}
			l.opts.Metrics.addSegments(-1)
		}
	}
	return pruneSnapshots(l.dir, 2)
}

// rotateLocked closes the active segment and opens a fresh one starting at
// the next LSN.
func (l *Log) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.dirty = false
	return l.openSegment(l.lsn + 1)
}

// openSegment creates and opens the segment whose first record will carry
// LSN start.
func (l *Log) openSegment(start uint64) error {
	name := fmt.Sprintf("%s%016x%s", segPrefix, start, segSuffix)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.opts.Metrics.addSegments(1)
	return nil
}

// appendRecord encodes one record onto dst.
func appendRecord(dst []byte, lsn uint64, kind byte, data []byte) []byte {
	n := overheadBytes + len(data)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	body := make([]byte, 0, n)
	body = binary.LittleEndian.AppendUint64(body, lsn)
	body = append(body, kind)
	body = append(body, data...)
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(body, castagnoli))
	return append(dst, body...)
}

// streamEnd reports how a segment scan ended.
type streamEnd struct {
	last uint64 // last valid LSN seen (0 if none)
	torn bool   // the stream ended at an unreadable record, not clean EOF
}

// decodeStream reads records from r, validating framing, CRC, and LSN
// continuity (the first record must carry the segment's start LSN; each
// record increments by one from prev). It stops at the first unreadable
// record, reporting it via streamEnd rather than an error: the caller
// decides whether a torn end is acceptable.
func decodeStream(r io.Reader, start, prev uint64, fn func(Record) error) (streamEnd, error) {
	end := streamEnd{last: 0}
	hdr := make([]byte, headerBytes)
	expected := start
	if prev > 0 {
		expected = prev + 1
	}
	var body []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF {
				return end, nil // clean end
			}
			end.torn = true
			return end, nil // partial header: torn tail
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n < overheadBytes || n > maxRecordBytes {
			end.torn = true
			return end, nil
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(r, body); err != nil {
			end.torn = true
			return end, nil
		}
		if crc32.Checksum(body, castagnoli) != crc {
			end.torn = true
			return end, nil
		}
		lsn := binary.LittleEndian.Uint64(body[0:8])
		if lsn != expected {
			end.torn = true
			return end, nil
		}
		rec := Record{LSN: lsn, Kind: body[8], Data: body[9:]}
		if fn != nil {
			if err := fn(rec); err != nil {
				return end, err
			}
		}
		end.last = lsn
		expected = lsn + 1
	}
}

// scanSegment validates one segment file, returning how it ended and the
// byte offset of the end of the last valid record (for torn-tail
// truncation).
func scanSegment(path string, start, prev uint64) (streamEnd, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return streamEnd{}, 0, err
	}
	defer f.Close()
	var valid int64
	end, err := decodeStream(f, start, prev, func(r Record) error {
		valid += int64(headerBytes + overheadBytes + len(r.Data))
		return nil
	})
	return end, valid, err
}

type segment struct {
	name  string
	start uint64
}

// listSegments returns the log's segments sorted by starting LSN.
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hexpart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		start, err := strconv.ParseUint(hexpart, 16, 64)
		if err != nil {
			continue // foreign file, ignore
		}
		segs = append(segs, segment{name: name, start: start})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return segs, nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
