package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func appendN(t *testing.T, l *Log, n int, kind byte) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append(kind, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func collect(t *testing.T, dir string, after uint64) []Record {
	t.Helper()
	var recs []Record
	if err := Replay(dir, after, func(r Record) error {
		recs = append(recs, Record{LSN: r.LSN, Kind: r.Kind, Data: append([]byte(nil), r.Data...)})
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10, 7)
	if got := l.LastLSN(); got != 10 {
		t.Fatalf("LastLSN = %d, want 10", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, dir, 0)
	if len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || r.Kind != 7 {
			t.Fatalf("record %d = {lsn %d, kind %d}", i, r.LSN, r.Kind)
		}
		if want := fmt.Sprintf("payload-%d", i); string(r.Data) != want {
			t.Fatalf("record %d data = %q, want %q", i, r.Data, want)
		}
	}
	// Replay from a cursor skips the prefix.
	if recs := collect(t, dir, 7); len(recs) != 3 || recs[0].LSN != 8 {
		t.Fatalf("replay after 7: got %d records starting at %d", len(recs), recs[0].LSN)
	}
}

func TestReopenContinuesLSN(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5, 1)
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.LastLSN(); got != 5 {
		t.Fatalf("LastLSN after reopen = %d, want 5", got)
	}
	appendN(t, l2, 5, 2)
	l2.Close()
	recs := collect(t, dir, 0)
	if len(recs) != 10 || recs[9].LSN != 10 || recs[9].Kind != 2 {
		t.Fatalf("after reopen: %d records, last %+v", len(recs), recs[len(recs)-1])
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5, 1)
	l.Close()

	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	path := filepath.Join(dir, segs[0].name)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-record: a crash between write and ack.
	if err := os.WriteFile(path, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if got := l2.LastLSN(); got != 4 {
		t.Fatalf("LastLSN after torn tail = %d, want 4", got)
	}
	// New appends continue cleanly after the truncation point.
	appendN(t, l2, 1, 9)
	l2.Close()
	recs := collect(t, dir, 0)
	if len(recs) != 5 || recs[4].LSN != 5 || recs[4].Kind != 9 {
		t.Fatalf("after truncation: %d records, last %+v", len(recs), recs[len(recs)-1])
	}
}

func TestCorruptMiddleRecordEndsReplayAtTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5, 1)
	l.Close()

	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0].name)
	b, _ := os.ReadFile(path)
	// Flip a payload byte of the middle record: CRC must catch it, and the
	// records after it become unreachable (they are the torn tail now).
	b[len(b)/2] ^= 0xff
	os.WriteFile(path, b, 0o644)

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if got := l2.LastLSN(); got >= 5 {
		t.Fatalf("LastLSN = %d, want < 5 after mid-file corruption", got)
	}
	l2.Close()
}

func TestCheckpointRetiresSegmentsAndSnapshots(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10, 1)
	for i := 0; i < 3; i++ {
		lsn := l.LastLSN()
		if _, err := WriteSnapshot(dir, lsn, []byte(fmt.Sprintf("snap-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := l.Checkpoint(lsn); err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 10, byte(2+i))
	}
	segs, _ := listSegments(dir)
	// Only segments holding records past the last checkpoint survive.
	for _, s := range segs {
		if s.start <= 20 {
			t.Fatalf("segment %s (start %d) should have been retired", s.name, s.start)
		}
	}
	snaps, _ := listSnapshots(dir)
	if len(snaps) > 2 {
		t.Fatalf("%d snapshots kept, want <= 2", len(snaps))
	}
	// Replay from the latest snapshot boundary covers exactly the tail.
	lsn, payload, err := LatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 30 || string(payload) != "snap-2" {
		t.Fatalf("latest snapshot = (%d, %q), want (30, snap-2)", lsn, payload)
	}
	recs := collect(t, dir, lsn)
	if len(recs) != 10 || recs[0].LSN != 31 {
		t.Fatalf("tail after snapshot: %d records from %d", len(recs), recs[0].LSN)
	}
	l.Close()
}

func TestLatestSnapshotFallsBackPastCorruption(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSnapshot(dir, 5, []byte("old")); err != nil {
		t.Fatal(err)
	}
	path, err := WriteSnapshot(dir, 9, []byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0xff
	os.WriteFile(path, b, 0o644)

	lsn, payload, err := LatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 5 || string(payload) != "old" {
		t.Fatalf("fallback snapshot = (%d, %q), want (5, old)", lsn, payload)
	}
}

func TestLatestSnapshotEmptyDir(t *testing.T) {
	lsn, payload, err := LatestSnapshot(t.TempDir())
	if err != nil || lsn != 0 || payload != nil {
		t.Fatalf("empty dir: (%d, %v, %v)", lsn, payload, err)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Fsync: pol, FsyncInterval: time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 20, 1)
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if got := len(collect(t, dir, 0)); got != 20 {
				t.Fatalf("replayed %d, want 20", got)
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{"always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy accepted garbage")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append(1, []byte("x")); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
}

func TestOversizedRecordRefused(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(1, make([]byte, maxRecordBytes)); err == nil {
		t.Fatal("oversized record accepted")
	}
	// The refused record must not have disturbed the log.
	if _, err := l.Append(1, []byte("ok")); err != nil {
		t.Fatalf("append after refusal: %v", err)
	}
}

func TestDecodeStreamRejectsLSNGap(t *testing.T) {
	var buf []byte
	buf = appendRecord(buf, 1, 1, []byte("a"))
	buf = appendRecord(buf, 3, 1, []byte("b")) // gap: 2 missing
	end, err := decodeStream(bytes.NewReader(buf), 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if end.last != 1 || !end.torn {
		t.Fatalf("end = %+v, want last=1 torn=true", end)
	}
}

// TestReopenAfterCheckpointKeepsLSNContinuity is the regression test for
// the empty-active-segment bug: a checkpoint that retires every record
// leaves only an empty segment, and the next Open must take the LSN
// high-water mark from the segment's filename — otherwise new appends
// reuse already-covered LSNs and replay silently drops them on the
// following restart.
func TestReopenAfterCheckpointKeepsLSNContinuity(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5, 1)
	if _, err := WriteSnapshot(dir, 5, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(5); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Reopen: only the empty post-checkpoint segment exists.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.LastLSN(); got != 5 {
		t.Fatalf("LastLSN after checkpointed reopen = %d, want 5", got)
	}
	appendN(t, l2, 3, 2)
	l2.Close()

	// The new records are past the snapshot boundary and replayable.
	lsn, _, err := LatestSnapshot(dir)
	if err != nil || lsn != 5 {
		t.Fatalf("snapshot boundary = (%d, %v)", lsn, err)
	}
	recs := collect(t, dir, lsn)
	if len(recs) != 3 || recs[0].LSN != 6 || recs[2].LSN != 8 {
		t.Fatalf("replay after boundary: %d records, first %+v", len(recs), recs)
	}

	// Third generation: reopen once more and keep appending.
	l3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l3.LastLSN(); got != 8 {
		t.Fatalf("LastLSN third generation = %d, want 8", got)
	}
	l3.Close()
}

func TestOpenSweepsOrphanedSnapshotTemps(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, "snap-0000000000000005.db.tmp-1234")
	if err := os.WriteFile(orphan, []byte("half-written"), 0o600); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned snapshot temp survived Open: %v", err)
	}
}
