// Package wavelet implements the Privelet mechanism of Xiao, Wang and
// Gehrke ("Differential privacy via wavelet transforms", ICDE 2010) — one of
// the hierarchical-family baselines the paper's Section 7 cites ([19]).
//
// A histogram over an ordered domain is Haar-transformed; each coefficient
// receives Laplace noise inversely proportional to its weight, chosen so the
// weighted L1 sensitivity of the whole coefficient vector is 1 + log2(N)
// per unit change (2(1+log2 N) for the indistinguishability neighbors used
// throughout this library). Range queries are answered from the
// reconstructed histogram with polylogarithmic error, like the hierarchical
// mechanism; the package exists as an additional differential-privacy
// baseline for ablation benchmarks.
package wavelet

import (
	"fmt"
	"math"

	"blowfish/internal/noise"
)

// Transform is a Haar wavelet transform over histograms of length n,
// zero-padded to the next power of two.
type Transform struct {
	n      int
	padded int
	levels int // log2(padded)
}

// New creates a transform for histograms of length n ≥ 1.
func New(n int) (*Transform, error) {
	if n < 1 {
		return nil, fmt.Errorf("wavelet: invalid length %d", n)
	}
	padded := 1
	levels := 0
	for padded < n {
		padded <<= 1
		levels++
	}
	return &Transform{n: n, padded: padded, levels: levels}, nil
}

// Len returns the histogram length n.
func (t *Transform) Len() int { return t.n }

// Padded returns the power-of-two transform length.
func (t *Transform) Padded() int { return t.padded }

// Levels returns log2(Padded()).
func (t *Transform) Levels() int { return t.levels }

// NumCoefficients returns the coefficient count: 1 average + padded-1
// detail coefficients.
func (t *Transform) NumCoefficients() int { return t.padded }

// Forward computes the Haar coefficients of counts. Coefficient 0 is the
// overall average; coefficient k (k ≥ 1, heap order) is
// (avg(left subtree) − avg(right subtree)) / 2 of the k-th internal node of
// the dyadic tree.
func (t *Transform) Forward(counts []float64) ([]float64, error) {
	if len(counts) != t.n {
		return nil, fmt.Errorf("wavelet: %d counts for length %d", len(counts), t.n)
	}
	// avgs[k] for heap-ordered dyadic nodes: leaves at k in
	// [padded, 2*padded).
	avgs := make([]float64, 2*t.padded)
	for i := 0; i < t.padded; i++ {
		if i < t.n {
			avgs[t.padded+i] = counts[i]
		}
	}
	for k := t.padded - 1; k >= 1; k-- {
		avgs[k] = (avgs[2*k] + avgs[2*k+1]) / 2
	}
	coeffs := make([]float64, t.padded)
	coeffs[0] = avgs[1] // overall average
	for k := 1; k < t.padded; k++ {
		coeffs[k] = (avgs[2*k] - avgs[2*k+1]) / 2
	}
	return coeffs, nil
}

// Inverse reconstructs the histogram (truncated to length n) from Haar
// coefficients.
func (t *Transform) Inverse(coeffs []float64) ([]float64, error) {
	if len(coeffs) != t.padded {
		return nil, fmt.Errorf("wavelet: %d coefficients for padded length %d", len(coeffs), t.padded)
	}
	avgs := make([]float64, 2*t.padded)
	avgs[1] = coeffs[0]
	for k := 1; k < t.padded; k++ {
		avgs[2*k] = avgs[k] + coeffs[k]
		avgs[2*k+1] = avgs[k] - coeffs[k]
	}
	out := make([]float64, t.n)
	copy(out, avgs[t.padded:t.padded+t.n])
	return out, nil
}

// Weights returns the Privelet weight W of each coefficient: W = padded for
// the average, 2^height(v) for the detail coefficient of a node with
// 2^height(v) leaves below it. A unit change to one count changes
// coefficient c by at most 1/W(c), so the weighted L1 sensitivity of the
// vector is 1 + levels.
func (t *Transform) Weights() []float64 {
	w := make([]float64, t.padded)
	w[0] = float64(t.padded)
	// Heap node k at depth d has padded/2^d leaves; depth of k is
	// floor(log2 k).
	for k := 1; k < t.padded; k++ {
		depth := 0
		for kk := k; kk > 1; kk >>= 1 {
			depth++
		}
		w[k] = float64(t.padded) / float64(int(1)<<depth)
	}
	return w
}

// Released holds noisy Haar coefficients.
type Released struct {
	t      *Transform
	coeffs []float64
	leaves []float64
}

// Release noises each coefficient with scale λ/W(c) where
// λ = 2(1+levels)·sensitivity-unit/ε: the factor 2 calibrates for
// change-one-tuple (indistinguishability) neighbors, matching the rest of
// the library.
func (t *Transform) Release(counts []float64, eps float64, src *noise.Source) (*Released, error) {
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("wavelet: invalid epsilon %v", eps)
	}
	coeffs, err := t.Forward(counts)
	if err != nil {
		return nil, err
	}
	lambda := 2 * float64(1+t.levels) / eps
	weights := t.Weights()
	noisy := make([]float64, len(coeffs))
	for i, c := range coeffs {
		noisy[i] = c + src.Laplace(lambda/weights[i])
	}
	leaves, err := t.Inverse(noisy)
	if err != nil {
		return nil, err
	}
	return &Released{t: t, coeffs: noisy, leaves: leaves}, nil
}

// Leaves returns the reconstructed noisy histogram.
func (r *Released) Leaves() []float64 { return r.leaves }

// RangeQuery answers q[lo, hi] (inclusive) from the reconstruction.
func (r *Released) RangeQuery(lo, hi int) (float64, error) {
	if lo < 0 || hi >= r.t.n || lo > hi {
		return 0, fmt.Errorf("wavelet: invalid range [%d,%d] over length %d", lo, hi, r.t.n)
	}
	var sum float64
	for i := lo; i <= hi; i++ {
		sum += r.leaves[i]
	}
	return sum, nil
}

// WeightedSensitivity computes Σ_c W(c)·|Δc| between the transforms of two
// histograms — the quantity the Privelet privacy analysis bounds. Exposed
// for the test suite's brute-force verification.
func (t *Transform) WeightedSensitivity(a, b []float64) (float64, error) {
	ca, err := t.Forward(a)
	if err != nil {
		return 0, err
	}
	cb, err := t.Forward(b)
	if err != nil {
		return 0, err
	}
	w := t.Weights()
	var sum float64
	for i := range ca {
		sum += w[i] * math.Abs(ca[i]-cb[i])
	}
	return sum, nil
}
