package wavelet

import (
	"math"
	"math/rand"
	"testing"

	"blowfish/internal/noise"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("length 0 accepted")
	}
	tr, err := New(5)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if tr.Padded() != 8 || tr.Levels() != 3 {
		t.Fatalf("padded=%d levels=%d, want 8, 3", tr.Padded(), tr.Levels())
	}
	tr, err = New(16)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if tr.Padded() != 16 || tr.Levels() != 4 {
		t.Fatalf("padded=%d levels=%d, want 16, 4", tr.Padded(), tr.Levels())
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 7, 8, 13, 64, 100} {
		tr, err := New(n)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		counts := make([]float64, n)
		for i := range counts {
			counts[i] = float64(rng.Intn(50))
		}
		coeffs, err := tr.Forward(counts)
		if err != nil {
			t.Fatalf("Forward: %v", err)
		}
		back, err := tr.Inverse(coeffs)
		if err != nil {
			t.Fatalf("Inverse: %v", err)
		}
		for i := range counts {
			if math.Abs(back[i]-counts[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip[%d] = %v, want %v", n, i, back[i], counts[i])
			}
		}
	}
}

func TestForwardKnownValues(t *testing.T) {
	tr, err := New(4)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	coeffs, err := tr.Forward([]float64{4, 2, 6, 0})
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	// avg = 3; c1 = (avg(4,2)-avg(6,0))/2 = 0; c2 = (4-2)/2 = 1; c3 = (6-0)/2 = 3.
	want := []float64{3, 0, 1, 3}
	for i := range want {
		if math.Abs(coeffs[i]-want[i]) > 1e-12 {
			t.Fatalf("coeff[%d] = %v, want %v", i, coeffs[i], want[i])
		}
	}
}

func TestWeights(t *testing.T) {
	tr, err := New(8)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	w := tr.Weights()
	// c0: 8; node 1 (root detail, 8 leaves): 8; nodes 2,3 (4 leaves): 4;
	// nodes 4..7 (2 leaves): 2.
	want := []float64{8, 8, 4, 4, 2, 2, 2, 2}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("W[%d] = %v, want %v", i, w[i], want[i])
		}
	}
}

// Privelet's privacy analysis: the weighted L1 distance between coefficient
// vectors of histograms differing by ±1 in one cell is at most 1 + levels,
// and at most 2(1+levels) for one-tuple-change neighbors. Verify by brute
// force over all cell pairs.
func TestWeightedSensitivityBound(t *testing.T) {
	for _, n := range []int{4, 8, 11, 16} {
		tr, err := New(n)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		bound := 2 * float64(1+tr.Levels())
		base := make([]float64, n)
		for i := range base {
			base[i] = 5
		}
		worst := 0.0
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if x == y {
					continue
				}
				mod := append([]float64(nil), base...)
				mod[x]--
				mod[y]++
				s, err := tr.WeightedSensitivity(base, mod)
				if err != nil {
					t.Fatalf("WeightedSensitivity: %v", err)
				}
				if s > worst {
					worst = s
				}
			}
		}
		if worst > bound+1e-9 {
			t.Fatalf("n=%d: weighted sensitivity %v exceeds bound %v", n, worst, bound)
		}
		// The bound should be nearly tight for power-of-two domains.
		if n == 8 && worst < bound*0.7 {
			t.Fatalf("n=8: worst-case sensitivity %v suspiciously below bound %v", worst, bound)
		}
	}
}

func TestReleaseUnbiasedRange(t *testing.T) {
	const (
		n    = 64
		eps  = 1.0
		reps = 4000
	)
	tr, err := New(n)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	counts := make([]float64, n)
	for i := range counts {
		counts[i] = float64(rng.Intn(30))
	}
	var truth float64
	for i := 10; i <= 50; i++ {
		truth += counts[i]
	}
	src := noise.NewSource(5)
	var sum float64
	for r := 0; r < reps; r++ {
		rel, err := tr.Release(counts, eps, src)
		if err != nil {
			t.Fatalf("Release: %v", err)
		}
		got, err := rel.RangeQuery(10, 50)
		if err != nil {
			t.Fatalf("RangeQuery: %v", err)
		}
		sum += got
	}
	mean := sum / reps
	if math.Abs(mean-truth) > 0.05*truth+10 {
		t.Fatalf("mean range answer %v, truth %v", mean, truth)
	}
}

func TestReleaseValidation(t *testing.T) {
	tr, err := New(8)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := tr.Release(make([]float64, 8), 0, noise.NewSource(1)); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := tr.Release(make([]float64, 3), 1, noise.NewSource(1)); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := tr.Forward(make([]float64, 9)); err == nil {
		t.Error("Forward length mismatch accepted")
	}
	if _, err := tr.Inverse(make([]float64, 9)); err == nil {
		t.Error("Inverse length mismatch accepted")
	}
	rel, err := tr.Release(make([]float64, 8), 1, noise.NewSource(1))
	if err != nil {
		t.Fatalf("Release: %v", err)
	}
	if _, err := rel.RangeQuery(3, 1); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := rel.RangeQuery(0, 9); err == nil {
		t.Error("out-of-range accepted")
	}
}

// Statistical privacy check of the end-to-end release, mirroring the
// Laplace mechanism test: a fixed event's probability ratio across
// neighboring histograms stays within e^ε.
func TestReleaseIndistinguishability(t *testing.T) {
	const (
		n    = 8
		eps  = 1.0
		reps = 150000
	)
	tr, err := New(n)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h1 := []float64{3, 1, 0, 2, 5, 0, 1, 0}
	h2 := append([]float64(nil), h1...)
	h2[0]--
	h2[4]++ // one tuple moved value 0 -> 4
	src := noise.NewSource(7)
	count1, count2 := 0, 0
	for r := 0; r < reps; r++ {
		r1, err := tr.Release(h1, eps, src)
		if err != nil {
			t.Fatalf("Release: %v", err)
		}
		if r1.Leaves()[0] > 2.5 {
			count1++
		}
		r2, err := tr.Release(h2, eps, src)
		if err != nil {
			t.Fatalf("Release: %v", err)
		}
		if r2.Leaves()[0] > 2.5 {
			count2++
		}
	}
	p1 := float64(count1) / reps
	p2 := float64(count2) / reps
	ratio := p1 / p2
	if ratio < 1 {
		ratio = 1 / ratio
	}
	if ratio > math.Exp(eps)*1.15 {
		t.Fatalf("probability ratio %v exceeds e^ε = %v", ratio, math.Exp(eps))
	}
}
