// Benchmarks for custom-policy compilation and explicit-graph releases,
// recorded in BENCH_policy.json and gated by cmd/benchgate in CI:
// plan compilation must stay a registration-time cost (tens of
// milliseconds for a ~1k-vertex, ~32k-edge graph, dominated by the
// all-pairs BFS table), and releases over explicit-graph policies must
// match the built-in kinds' per-release profile — no BFS on the hot path.
package blowfish_test

import (
	"testing"

	"blowfish"
)

const explicitBenchVertices = 1024

// explicitBenchSpec is a banded graph with bridges over a 1024-value line
// domain: ~32k edges in 16 complete bands of 64, the shape the custom-graph
// walkthrough uses.
func explicitBenchSpec(b *testing.B) (*blowfish.Domain, blowfish.GraphSpec) {
	b.Helper()
	dom, err := blowfish.LineDomain("v", explicitBenchVertices)
	if err != nil {
		b.Fatal(err)
	}
	var edges [][2][]int
	const band = 64
	for lo := 0; lo < explicitBenchVertices; lo += band {
		for x := lo; x < lo+band; x++ {
			for y := x + 1; y < lo+band; y++ {
				edges = append(edges, [2][]int{{x}, {y}})
			}
		}
		if lo > 0 {
			edges = append(edges, [2][]int{{lo - 1}, {lo}})
		}
	}
	return dom, blowfish.GraphSpec{Kind: "explicit", Name: "bench-bands", Edges: edges}
}

// BenchmarkPolicyCompileExplicit measures the full registration path for a
// custom policy: spec build (edge-list lowering) plus plan compilation —
// the all-pairs BFS distance table, the component index and every cached
// sensitivity.
func BenchmarkPolicyCompileExplicit(b *testing.B) {
	dom, spec := explicitBenchSpec(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, _, err := blowfish.BuildGraph(dom, spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := blowfish.Compile(blowfish.NewPolicy(g)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineExplicitHistogram measures repeated histogram releases
// over a compiled explicit-graph policy: the distance table and
// sensitivities were paid at compile time, so the per-release cost must be
// the same O(|T|) snapshot + noise as the built-in kinds.
func BenchmarkEngineExplicitHistogram(b *testing.B) {
	dom, spec := explicitBenchSpec(b)
	g, _, err := blowfish.BuildGraph(dom, spec)
	if err != nil {
		b.Fatal(err)
	}
	ds := blowfish.NewDataset(dom)
	src := blowfish.NewSource(1)
	for i := 0; i < 100000; i++ {
		ds.MustAdd(blowfish.Point(src.Int63n(explicitBenchVertices)))
	}
	sess, err := blowfish.NewSession(blowfish.NewPolicy(g), benchBudget, blowfish.NewSource(2))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.ReleaseHistogram(ds, benchEps); err != nil { // prime the index
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.ReleaseHistogram(ds, benchEps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineExplicitRange is the range-release analogue: the Ordered
// Hierarchical layout for the graph-derived θ comes from the plan cache.
func BenchmarkEngineExplicitRange(b *testing.B) {
	dom, spec := explicitBenchSpec(b)
	g, _, err := blowfish.BuildGraph(dom, spec)
	if err != nil {
		b.Fatal(err)
	}
	ds := blowfish.NewDataset(dom)
	src := blowfish.NewSource(1)
	for i := 0; i < 100000; i++ {
		ds.MustAdd(blowfish.Point(src.Int63n(explicitBenchVertices)))
	}
	sess, err := blowfish.NewSession(blowfish.NewPolicy(g), benchBudget, blowfish.NewSource(2))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, err := sess.NewRangeReleaser(ds, 16, benchEps)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rel.Range(100, 900); err != nil {
			b.Fatal(err)
		}
	}
}
