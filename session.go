package blowfish

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"blowfish/internal/domain"
	"blowfish/internal/mechanism"
)

// Session ties a policy, a privacy-budget accountant and a noise source
// together: every release is charged against the budget before anything is
// returned, so a data publisher cannot accidentally overspend. Releases are
// computed first and charged second — if the charge fails, the computed
// values are discarded unpublished, so a failed call costs nothing.
//
// Budget arithmetic follows sequential composition (Theorem 4.1); use the
// underlying Accountant's SpendParallel for disjoint-subset workloads
// (Theorem 4.2).
//
// A Session is safe for concurrent use. The Accountant is internally
// locked, and the session serializes draws from its noise Source (which is
// itself not concurrency-safe) with a mutex, so releases issued from many
// goroutines never race and never overspend: each charge is atomic against
// the remaining budget. Concurrent releases are computed one at a time; for
// parallel noise generation give each goroutine its own Session over a
// Split source.
type Session struct {
	pol  *Policy
	acct *Accountant

	// mu serializes use of src: noise Sources are deterministic streams and
	// must not be shared across goroutines without this lock.
	mu  sync.Mutex
	src *Source
}

// NewSession creates a session for the policy with a total ε budget.
func NewSession(pol *Policy, budget float64, src *Source) (*Session, error) {
	if pol == nil {
		return nil, errors.New("blowfish: nil policy")
	}
	if src == nil {
		return nil, errors.New("blowfish: nil noise source")
	}
	acct, err := NewAccountant(budget)
	if err != nil {
		return nil, err
	}
	return &Session{pol: pol, acct: acct, src: src}, nil
}

// Policy returns the session's policy.
func (s *Session) Policy() *Policy { return s.pol }

// Accountant exposes the budget ledger (remaining budget, release log,
// parallel spending).
func (s *Session) Accountant() *Accountant { return s.acct }

// Remaining returns the unspent budget.
func (s *Session) Remaining() float64 { return s.acct.Remaining() }

// checkDataset validates the dataset against the session policy's domain.
func (s *Session) checkDataset(ds *Dataset) error {
	if !s.pol.Domain().Equal(ds.Domain()) {
		return ErrDomainMismatch
	}
	return nil
}

// precheck cheaply refuses a charge that cannot possibly fit the remaining
// budget, before any noise is computed — an exhausted session would
// otherwise pay the full release computation (under the source lock) just
// to be refused at the Spend. The check is advisory: Accountant.Spend
// remains the authoritative, atomic gate.
func (s *Session) precheck(eps float64) error {
	if !(eps > 0) {
		// Invalid epsilons surface from the mechanism's own validation.
		return nil
	}
	return s.acct.CanSpend(eps)
}

// ReleaseHistogram releases the complete histogram, charging eps.
func (s *Session) ReleaseHistogram(ds *Dataset, eps float64) ([]float64, error) {
	if err := s.checkDataset(ds); err != nil {
		return nil, err
	}
	if err := s.precheck(eps); err != nil {
		return nil, err
	}
	s.mu.Lock()
	rel, err := ReleaseHistogram(s.pol, ds, eps, s.src)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := s.acct.Spend("histogram", eps); err != nil {
		return nil, err // release discarded unpublished
	}
	return rel, nil
}

// ReleasePartitionHistogram releases the block histogram, charging eps only
// when the release is actually noisy; a zero-sensitivity (exact) release is
// free, as Section 5's coarse-grid observation permits.
func (s *Session) ReleasePartitionHistogram(ds *Dataset, part Partition, eps float64) ([]float64, error) {
	if err := s.checkDataset(ds); err != nil {
		return nil, err
	}
	sens, err := s.pol.PartitionHistogramSensitivity(part)
	if err != nil {
		return nil, err
	}
	if sens > 0 {
		if err := s.precheck(eps); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	rel, err := mechanism.ReleasePartitionHistogramWithSens(ds, part, sens, eps, s.src)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if sens > 0 {
		if err := s.acct.Spend(fmt.Sprintf("partition-histogram|%d", part.NumBlocks()), eps); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// PrivateKMeans runs SuLQ k-means, charging eps.
func (s *Session) PrivateKMeans(ds *Dataset, k, iterations int, eps float64) (KMeansResult, error) {
	if err := s.checkDataset(ds); err != nil {
		return KMeansResult{}, err
	}
	if err := s.precheck(eps); err != nil {
		return KMeansResult{}, err
	}
	s.mu.Lock()
	res, err := PrivateKMeans(s.pol, ds, k, iterations, eps, s.src)
	s.mu.Unlock()
	if err != nil {
		return KMeansResult{}, err
	}
	if err := s.acct.Spend(fmt.Sprintf("kmeans|k=%d", k), eps); err != nil {
		return KMeansResult{}, err
	}
	return res, nil
}

// ReleaseCumulativeHistogram runs the Ordered Mechanism, charging eps.
func (s *Session) ReleaseCumulativeHistogram(ds *Dataset, eps float64) (*CumulativeRelease, error) {
	if err := s.checkDataset(ds); err != nil {
		return nil, err
	}
	if err := s.precheck(eps); err != nil {
		return nil, err
	}
	s.mu.Lock()
	rel, err := ReleaseCumulativeHistogram(s.pol, ds, eps, s.src)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := s.acct.Spend("cumulative-histogram", eps); err != nil {
		return nil, err
	}
	return rel, nil
}

// NewRangeReleaser builds an Ordered Hierarchical release, charging eps.
func (s *Session) NewRangeReleaser(ds *Dataset, fanout int, eps float64) (*RangeReleaser, error) {
	if err := s.checkDataset(ds); err != nil {
		return nil, err
	}
	if err := s.precheck(eps); err != nil {
		return nil, err
	}
	s.mu.Lock()
	rel, err := NewRangeReleaser(s.pol, ds, fanout, eps, s.src)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := s.acct.Spend("range-releaser", eps); err != nil {
		return nil, err
	}
	return rel, nil
}

// ReadDatasetCSV parses a dataset from the library's CSV interchange format
// (a header of attribute names, one integer row per tuple); Dataset.WriteCSV
// produces it.
func ReadDatasetCSV(d *Domain, r io.Reader) (*Dataset, error) {
	return domain.ReadCSV(d, r)
}
