package blowfish

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"blowfish/internal/domain"
	"blowfish/internal/engine"
	"blowfish/internal/mechanism"
	"blowfish/internal/stream"
)

// Session ties a policy, a privacy-budget accountant and a noise source
// together: every release is charged against the budget before anything is
// returned, so a data publisher cannot accidentally overspend. Releases are
// computed first and charged second — if the charge fails, the computed
// values are discarded unpublished, so a failed call costs nothing.
//
// Budget arithmetic follows sequential composition (Theorem 4.1); use the
// underlying Accountant's SpendParallel for disjoint-subset workloads
// (Theorem 4.2).
//
// Unconstrained policies run on the compiled release engine: the policy's
// sensitivities and tree layouts are computed once at session creation, and
// each dataset's count vectors are indexed on first use and maintained
// incrementally, so repeated releases never rescan the tuples. Constrained
// policies keep the legacy per-release path (package constraints).
//
// A Session is safe for concurrent use and never overspends: each charge is
// atomic against the remaining budget. A Session from NewSession draws all
// noise from one stream, so concurrent releases serialize on it (and match
// the legacy noise stream bit-for-bit); NewSessionShards gives the engine a
// pool of independent Split streams so releases from many goroutines draw
// noise in parallel.
type Session struct {
	pol  *Policy
	acct *Accountant

	// eng serves unconstrained policies from the compiled plan; nil for
	// constrained policies, which use the legacy path below.
	eng *engine.Engine

	// mu serializes use of src on the legacy path: noise Sources are
	// deterministic streams and must not be shared across goroutines
	// without this lock.
	mu  sync.Mutex
	src *Source
}

// NewSession creates a session for the policy with a total ε budget. The
// session draws all noise from src; see NewSessionShards for parallel noise
// generation.
func NewSession(pol *Policy, budget float64, src *Source) (*Session, error) {
	return NewSessionShards(pol, budget, src, 1)
}

// NewSessionShards creates a session whose engine draws noise from a pool
// of `shards` independent streams derived from src (values < 1 are treated
// as 1), so releases issued from many goroutines proceed concurrently
// instead of serializing on a single source. With shards == 1 the session
// is bit-for-bit identical to NewSession. Constrained policies always use a
// single stream.
func NewSessionShards(pol *Policy, budget float64, src *Source, shards int) (*Session, error) {
	return newSession(pol, nil, budget, src, shards)
}

func newSession(pol *Policy, plan *engine.Plan, budget float64, src *Source, shards int) (*Session, error) {
	if pol == nil {
		return nil, errors.New("blowfish: nil policy")
	}
	if src == nil {
		return nil, errors.New("blowfish: nil noise source")
	}
	acct, err := NewAccountant(budget)
	if err != nil {
		return nil, err
	}
	s := &Session{pol: pol, acct: acct, src: src}
	if plan == nil && pol.Unconstrained() {
		plan, err = engine.Compile(pol)
		if err != nil {
			return nil, err
		}
	}
	if plan != nil {
		eng, err := engine.New(plan, acct, src, shards)
		if err != nil {
			return nil, err
		}
		s.eng = eng
	}
	return s, nil
}

// Policy returns the session's policy.
func (s *Session) Policy() *Policy { return s.pol }

// EngineMetrics aliases engine.Metrics: the pre-resolved per-release-kind
// instruments (latency histogram + count) a session's engine reports into.
type EngineMetrics = engine.Metrics

// EngineReleaseMetrics aliases engine.ReleaseMetrics, one kind's slot of
// an EngineMetrics.
type EngineReleaseMetrics = engine.ReleaseMetrics

// SetEngineMetrics installs release instrumentation on the session's
// engine (per-kind latency histograms, release counts, noise-draw
// stats). Resolve any labeled metric children before the call — the
// engine's hot paths only ever touch the bare pointers. A no-op for
// constrained (legacy-path) sessions, which have no engine; pass nil to
// disable.
func (s *Session) SetEngineMetrics(m *EngineMetrics) {
	if s.eng != nil {
		s.eng.SetMetrics(m)
	}
}

// SessionState is a serializable snapshot of a session's replay-relevant
// state: the budget ledger and the exact position of every noise stream.
// The durable server checkpoints it so a restarted session refuses exactly
// the releases the pre-crash session would have, and (for single-shard
// seeded sessions) continues the identical noise stream.
type SessionState struct {
	Accountant AccountantState   `json:"accountant"`
	Noise      engine.NoiseState `json:"noise"`
}

// ExportState captures the session's state. Only engine-backed
// (unconstrained-policy) sessions support export; the legacy constrained
// path has no serializable noise pool.
func (s *Session) ExportState() (SessionState, error) {
	if s.eng == nil {
		return SessionState{}, errors.New("blowfish: state export requires an unconstrained (engine-compiled) policy")
	}
	noise, err := s.eng.ExportNoise()
	if err != nil {
		return SessionState{}, err
	}
	return SessionState{Accountant: s.acct.State(), Noise: noise}, nil
}

// RestoreState overwrites the session's ledger and noise streams with a
// state captured by ExportState. The session must have been created with
// the same budget and shard count; restoration is monotone in spend.
func (s *Session) RestoreState(st SessionState) error {
	if s.eng == nil {
		return errors.New("blowfish: state restore requires an unconstrained (engine-compiled) policy")
	}
	if err := s.acct.Restore(st.Accountant); err != nil {
		return err
	}
	return s.eng.RestoreNoise(st.Noise)
}

// Accountant exposes the budget ledger (remaining budget, release log,
// parallel spending).
func (s *Session) Accountant() *Accountant { return s.acct }

// Remaining returns the unspent budget.
func (s *Session) Remaining() float64 { return s.acct.Remaining() }

// Forget drops the engine's cached count vectors for ds, releasing their
// memory. Call it when a long-lived session streams many short-lived
// datasets; the next release over ds rebuilds the index. For sessions
// minted from a shared CompiledPolicy the cache is shared, so sibling
// sessions over the same dataset rebuild on their next release too.
func (s *Session) Forget(ds *Dataset) {
	if s.eng != nil {
		s.eng.Plan().Forget(ds)
	}
}

// index resolves the engine's incrementally maintained index for ds,
// reporting ErrDomainMismatch for foreign-domain datasets.
func (s *Session) index(ds *Dataset) (*engine.DatasetIndex, error) {
	return s.eng.Index(ds)
}

// checkDataset validates the dataset against the session policy's domain
// (legacy path; the engine path validates through Plan.Index).
func (s *Session) checkDataset(ds *Dataset) error {
	if !s.pol.Domain().Equal(ds.Domain()) {
		return ErrDomainMismatch
	}
	return nil
}

// precheck cheaply refuses a charge that cannot possibly fit the remaining
// budget, before any noise is computed — an exhausted session would
// otherwise pay the full release computation (under the source lock) just
// to be refused at the Spend. The check is advisory: Accountant.Spend
// remains the authoritative, atomic gate.
func (s *Session) precheck(eps float64) error {
	if !(eps > 0) {
		// Invalid epsilons surface from the mechanism's own validation.
		return nil
	}
	return s.acct.CanSpend(eps)
}

// ReleaseHistogram releases the complete histogram, charging eps.
func (s *Session) ReleaseHistogram(ds *Dataset, eps float64) ([]float64, error) {
	if s.eng != nil {
		idx, err := s.index(ds)
		if err != nil {
			return nil, err
		}
		return s.eng.ReleaseHistogram(idx, eps)
	}
	if err := s.checkDataset(ds); err != nil {
		return nil, err
	}
	if err := s.precheck(eps); err != nil {
		return nil, err
	}
	s.mu.Lock()
	rel, err := ReleaseHistogram(s.pol, ds, eps, s.src)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := s.acct.Spend("histogram", eps); err != nil {
		return nil, err // release discarded unpublished
	}
	return rel, nil
}

// ReleasePartitionHistogram releases the block histogram, charging eps only
// when the release is actually noisy; a zero-sensitivity (exact) release is
// free, as Section 5's coarse-grid observation permits.
func (s *Session) ReleasePartitionHistogram(ds *Dataset, part Partition, eps float64) ([]float64, error) {
	if s.eng != nil {
		idx, err := s.index(ds)
		if err != nil {
			return nil, err
		}
		return s.eng.ReleasePartitionHistogram(idx, part, eps)
	}
	if err := s.checkDataset(ds); err != nil {
		return nil, err
	}
	sens, err := s.pol.PartitionHistogramSensitivity(part)
	if err != nil {
		return nil, err
	}
	if sens > 0 {
		if err := s.precheck(eps); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	rel, err := mechanism.ReleasePartitionHistogramWithSens(ds, part, sens, eps, s.src)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if sens > 0 {
		if err := s.acct.Spend(fmt.Sprintf("partition-histogram|%d", part.NumBlocks()), eps); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// PrivateKMeans runs SuLQ k-means, charging eps.
func (s *Session) PrivateKMeans(ds *Dataset, k, iterations int, eps float64) (KMeansResult, error) {
	if s.eng != nil {
		idx, err := s.index(ds)
		if err != nil {
			return KMeansResult{}, err
		}
		return s.eng.PrivateKMeans(idx, k, iterations, eps)
	}
	if err := s.checkDataset(ds); err != nil {
		return KMeansResult{}, err
	}
	if err := s.precheck(eps); err != nil {
		return KMeansResult{}, err
	}
	s.mu.Lock()
	res, err := PrivateKMeans(s.pol, ds, k, iterations, eps, s.src)
	s.mu.Unlock()
	if err != nil {
		return KMeansResult{}, err
	}
	if err := s.acct.Spend(fmt.Sprintf("kmeans|k=%d", k), eps); err != nil {
		return KMeansResult{}, err
	}
	return res, nil
}

// ReleaseCumulativeHistogram runs the Ordered Mechanism, charging eps.
func (s *Session) ReleaseCumulativeHistogram(ds *Dataset, eps float64) (*CumulativeRelease, error) {
	if s.eng != nil {
		idx, err := s.index(ds)
		if err != nil {
			return nil, err
		}
		raw, inferred, err := s.eng.ReleaseCumulative(idx, eps)
		if err != nil {
			return nil, err
		}
		return &CumulativeRelease{Raw: raw, Inferred: inferred}, nil
	}
	if err := s.checkDataset(ds); err != nil {
		return nil, err
	}
	if err := s.precheck(eps); err != nil {
		return nil, err
	}
	s.mu.Lock()
	rel, err := ReleaseCumulativeHistogram(s.pol, ds, eps, s.src)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := s.acct.Spend("cumulative-histogram", eps); err != nil {
		return nil, err
	}
	return rel, nil
}

// NewRangeReleaser builds an Ordered Hierarchical release, charging eps.
// On the engine path the tree layout comes from the plan's cache, so only
// the first release for a given fanout pays tree construction.
func (s *Session) NewRangeReleaser(ds *Dataset, fanout int, eps float64) (*RangeReleaser, error) {
	if s.eng != nil {
		idx, err := s.index(ds)
		if err != nil {
			return nil, err
		}
		rel, err := s.eng.NewRangeRelease(idx, fanout, eps)
		if err != nil {
			return nil, err
		}
		return &RangeReleaser{release: rel}, nil
	}
	if err := s.checkDataset(ds); err != nil {
		return nil, err
	}
	if err := s.precheck(eps); err != nil {
		return nil, err
	}
	s.mu.Lock()
	rel, err := NewRangeReleaser(s.pol, ds, fanout, eps, s.src)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := s.acct.Spend("range-releaser", eps); err != nil {
		return nil, err
	}
	return rel, nil
}

// NewStream binds a continual-release stream to the session: epoch closes
// draw noise from the session's engine and charge its accountant, so a
// stream and ad-hoc releases from the same session spend one shared ε
// budget by sequential composition. The table's dataset is indexed through
// the session's compiled plan, keeping its count vectors incremental under
// ingestion. Constrained policies (legacy release path) do not stream.
func (s *Session) NewStream(tbl *StreamTable, cfg StreamConfig) (*Stream, error) {
	if s.eng == nil {
		return nil, errors.New("blowfish: streaming requires an unconstrained (engine-compiled) policy")
	}
	return stream.New(s.eng, tbl, cfg)
}

// ReadDatasetCSV parses a dataset from the library's CSV interchange format
// (a header of attribute names, one integer row per tuple); Dataset.WriteCSV
// produces it.
func ReadDatasetCSV(d *Domain, r io.Reader) (*Dataset, error) {
	return domain.ReadCSV(d, r)
}
