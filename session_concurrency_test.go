package blowfish_test

import (
	"errors"
	"math"
	"sync"
	"testing"

	"blowfish"
)

// TestSessionConcurrentBudgetAccounting hammers a single Session from many
// goroutines and asserts the Accountant's invariants hold under the race
// detector: the cumulative spend never exceeds the total ε, exactly
// budget/eps releases succeed, and the release log length matches the
// number of successes (no torn or duplicated ledger entries).
func TestSessionConcurrentBudgetAccounting(t *testing.T) {
	dom, err := blowfish.LineDomain("v", 128)
	if err != nil {
		t.Fatal(err)
	}
	g, err := blowfish.DistanceThreshold(dom, 8)
	if err != nil {
		t.Fatal(err)
	}
	pol := blowfish.NewPolicy(g)
	ds := blowfish.NewDataset(dom)
	for i := 0; i < 256; i++ {
		ds.MustAdd(blowfish.Point(i % 128))
	}

	const (
		budget     = 1.0
		eps        = 0.02 // exactly 50 releases fit
		goroutines = 16
		perG       = 8 // 128 attempts, at most 50 can succeed
	)
	sess, err := blowfish.NewSession(pol, budget, blowfish.NewSource(1))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	successes, refused := 0, 0
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var err error
				// Mix workloads so different release paths contend on the
				// same source lock and accountant.
				switch (g + i) % 3 {
				case 0:
					_, err = sess.ReleaseHistogram(ds, eps)
				case 1:
					_, err = sess.ReleaseCumulativeHistogram(ds, eps)
				default:
					_, err = sess.NewRangeReleaser(ds, 16, eps)
				}
				mu.Lock()
				switch {
				case err == nil:
					successes++
				case errors.Is(err, blowfish.ErrBudgetExceeded):
					refused++
				default:
					t.Errorf("unexpected release error: %v", err)
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	acct := sess.Accountant()
	if acct.Spent() > budget+1e-9 {
		t.Fatalf("accountant overspent: %v > %v", acct.Spent(), budget)
	}
	if want := int(math.Round(budget / eps)); successes != want {
		t.Fatalf("successes = %d, want %d", successes, want)
	}
	if successes+refused != goroutines*perG {
		t.Fatalf("accounted %d attempts, want %d", successes+refused, goroutines*perG)
	}
	log := acct.Releases()
	if len(log) != successes {
		t.Fatalf("release log has %d entries, want %d", len(log), successes)
	}
	var total float64
	for _, rel := range log {
		if rel.Epsilon != eps {
			t.Fatalf("ledger entry with epsilon %v, want %v", rel.Epsilon, eps)
		}
		total += rel.Epsilon
	}
	if math.Abs(total-acct.Spent()) > 1e-9 {
		t.Fatalf("ledger sum %v disagrees with Spent() %v", total, acct.Spent())
	}
}
