package blowfish

import (
	"bytes"
	"strings"
	"testing"
)

func newTestSession(t *testing.T) (*Session, *Dataset) {
	t.Helper()
	d, ds := testDataset(t)
	g, err := DistanceThreshold(d, 4)
	if err != nil {
		t.Fatalf("DistanceThreshold: %v", err)
	}
	s, err := NewSession(NewPolicy(g), 1.0, NewSource(5))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	return s, ds
}

func TestSessionSpendsAndEnforcesBudget(t *testing.T) {
	s, ds := newTestSession(t)
	if _, err := s.ReleaseHistogram(ds, 0.4); err != nil {
		t.Fatalf("ReleaseHistogram: %v", err)
	}
	if got := s.Remaining(); got < 0.599 || got > 0.601 {
		t.Fatalf("Remaining = %v, want 0.6", got)
	}
	if _, err := s.NewRangeReleaser(ds, 16, 0.4); err != nil {
		t.Fatalf("NewRangeReleaser: %v", err)
	}
	// Over budget: fails without charging.
	if _, err := s.ReleaseCumulativeHistogram(ds, 0.5); err == nil {
		t.Fatal("over-budget release accepted")
	}
	if got := s.Remaining(); got < 0.199 || got > 0.201 {
		t.Fatalf("failed release charged the budget: remaining %v", got)
	}
	// Exactly the remainder succeeds.
	if _, err := s.PrivateKMeans(ds, 2, 3, 0.2); err != nil {
		t.Fatalf("PrivateKMeans: %v", err)
	}
	// The ledger names every release.
	labels := make([]string, 0, 3)
	for _, r := range s.Accountant().Releases() {
		labels = append(labels, r.Label)
	}
	joined := strings.Join(labels, ",")
	for _, want := range []string{"histogram", "range-releaser", "kmeans|k=2"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("ledger %v missing %q", labels, want)
		}
	}
}

func TestSessionValidation(t *testing.T) {
	d, ds := testDataset(t)
	if _, err := NewSession(nil, 1, NewSource(1)); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := NewSession(DifferentialPrivacy(d), 0, NewSource(1)); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := NewSession(DifferentialPrivacy(d), 1, nil); err == nil {
		t.Error("nil source accepted")
	}
	other, err := LineDomain("w", 9)
	if err != nil {
		t.Fatalf("LineDomain: %v", err)
	}
	s, err := NewSession(DifferentialPrivacy(other), 1, NewSource(1))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if _, err := s.ReleaseHistogram(ds, 0.5); err == nil {
		t.Error("foreign-domain dataset accepted")
	}
	if s.Policy().Domain() != other {
		t.Error("Policy accessor wrong")
	}
}

func TestSessionExactPartitionReleaseIsFree(t *testing.T) {
	d, err := LineDomain("v", 8)
	if err != nil {
		t.Fatalf("LineDomain: %v", err)
	}
	part, err := UniformGridPartition(d, []int{2})
	if err != nil {
		t.Fatalf("UniformGridPartition: %v", err)
	}
	coarse, err := UniformGridPartition(d, []int{4})
	if err != nil {
		t.Fatalf("UniformGridPartition: %v", err)
	}
	ds := NewDataset(d)
	for v := 0; v < 8; v++ {
		if err := ds.Add(Point(v)); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	s, err := NewSession(NewPolicy(PartitionedSecrets(part)), 1.0, NewSource(3))
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	// Policy partition refines coarse: sensitivity 0, release exact, free.
	rel, err := s.ReleasePartitionHistogram(ds, coarse, 0.5)
	if err != nil {
		t.Fatalf("ReleasePartitionHistogram: %v", err)
	}
	if s.Remaining() != 1.0 {
		t.Fatalf("exact release charged budget: remaining %v", s.Remaining())
	}
	truth, err := ds.PartitionHistogram(coarse)
	if err != nil {
		t.Fatalf("PartitionHistogram: %v", err)
	}
	for i := range truth {
		if rel[i] != truth[i] {
			t.Fatal("exact release was noisy")
		}
	}
	// Releasing over a partition FINER than the policy's (unit blocks) is
	// noisy and charges the budget.
	fine, err := UniformGridPartition(d, []int{1})
	if err != nil {
		t.Fatalf("UniformGridPartition: %v", err)
	}
	if _, err := s.ReleasePartitionHistogram(ds, fine, 0.5); err != nil {
		t.Fatalf("ReleasePartitionHistogram: %v", err)
	}
	if s.Remaining() != 0.5 {
		t.Fatalf("noisy release not charged: remaining %v", s.Remaining())
	}
}

func TestDatasetCSVThroughFacade(t *testing.T) {
	d, ds := testDataset(t)
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadDatasetCSV(d, &buf)
	if err != nil {
		t.Fatalf("ReadDatasetCSV: %v", err)
	}
	if back.Len() != ds.Len() {
		t.Fatalf("round trip length %d, want %d", back.Len(), ds.Len())
	}
}
