package blowfish

import (
	"blowfish/internal/engine"
	"blowfish/internal/stream"
)

// Streaming ingestion and continual release (internal/stream): a dataset
// becomes a StreamTable, events flow through a StreamIngestor (sequence
// numbers, single-writer batched application onto the release engine's
// incremental index), and a Stream bound to a Session publishes noisy
// releases at each epoch close, charging a per-epoch epsilon schedule
// against the session's budget by sequential composition (Theorem 3.6 /
// 4.1) until it is exhausted:
//
//	tbl, _ := blowfish.NewStreamTable(blowfish.NewDataset(dom))
//	ing, _ := blowfish.NewStreamIngestor(tbl, blowfish.StreamIngestConfig{})
//	st, _  := sess.NewStream(tbl, blowfish.StreamConfig{Epsilon: 0.1})
//	ing.Submit([]blowfish.StreamEvent{{Op: "append", Row: []int{42}}})
//	rel, _ := st.CloseEpoch() // noisy histogram over everything so far

// Streaming re-exports.
type (
	// StreamTable is the synchronization point for one streamed dataset:
	// ingestion and window expiry write-lock it, releases read-lock it.
	StreamTable = stream.Table
	// StreamEvent is one append/upsert/delete mutation.
	StreamEvent = stream.Event
	// StreamIngestor is the sequence-numbered, single-writer batching event
	// log over a table.
	StreamIngestor = stream.Ingestor
	// StreamIngestConfig tunes batching and backpressure.
	StreamIngestConfig = stream.IngestConfig
	// StreamIngestMetrics are the optional instruments the ingest writer
	// goroutine reports into (StreamIngestConfig.Metrics).
	StreamIngestMetrics = stream.IngestMetrics
	// StreamIngestStats is a snapshot of an ingestor's counters.
	StreamIngestStats = stream.IngestStats
	// Stream is the continual-release epoch scheduler.
	Stream = stream.Stream
	// StreamConfig binds a stream's window, epsilon schedule and releases.
	StreamConfig = stream.Config
	// StreamStatus is a snapshot of a stream's progress.
	StreamStatus = stream.Status
	// EpochRelease is the published output of one epoch close.
	EpochRelease = stream.EpochRelease
	// StreamWindow selects cumulative, tumbling or sliding windows.
	StreamWindow = stream.Window
	// StreamReleaseKind names a release published per epoch.
	StreamReleaseKind = stream.ReleaseKind
	// StreamRangeQuery is one inclusive range count for range-kind epochs.
	StreamRangeQuery = stream.RangeQuery
	// StreamState is a stream's serializable progress (durable restarts).
	StreamState = stream.State
	// StreamTableState is a table's serializable streaming bookkeeping.
	StreamTableState = stream.TableState
	// StreamMutation is one encoded dataset mutation, the unit the table's
	// write-ahead journal hook receives.
	StreamMutation = engine.Mutation
	// StreamMutOp selects the kind of a StreamMutation.
	StreamMutOp = engine.MutOp
)

// Mutation op kinds.
const (
	StreamMutAdd    = engine.MutAdd
	StreamMutSet    = engine.MutSet
	StreamMutRemove = engine.MutRemove
)

// EncodeStreamEvents validates events against dom and lowers them to the
// mutations an ingest journal records and a recovery replays.
func EncodeStreamEvents(dom *Domain, events []StreamEvent) ([]StreamMutation, error) {
	return stream.EncodeEvents(dom, events)
}

// Window kinds.
const (
	WindowCumulative = stream.WindowCumulative
	WindowTumbling   = stream.WindowTumbling
	WindowSliding    = stream.WindowSliding
)

// Per-epoch release kinds.
const (
	StreamHistogram  = stream.KindHistogram
	StreamCumulative = stream.KindCumulative
	StreamRange      = stream.KindRange
)

// ErrIngestClosed is returned by StreamIngestor.Submit after Close.
var ErrIngestClosed = stream.ErrIngestClosed

// ErrStreamStopped is returned by Stream.WaitReleases when the stream is
// shut down while a waiter is parked (server shutdown wakes long-polls).
var ErrStreamStopped = stream.ErrStopped

// StreamQueueFullError is returned by StreamIngestor.TrySubmit when the
// ingest queue lacks room for the whole batch (explicit backpressure:
// nothing was enqueued, retry after backing off).
type StreamQueueFullError = stream.QueueFullError

// NewStreamTable wraps a dataset for streaming. Once streaming begins, the
// dataset must only be mutated through the table (the ingestor, or
// Table.Mutate).
func NewStreamTable(ds *Dataset) (*StreamTable, error) { return stream.NewTable(ds) }

// NewStreamIngestor starts the single-writer event log for tbl. Close it to
// stop the writer goroutine.
func NewStreamIngestor(tbl *StreamTable, cfg StreamIngestConfig) (*StreamIngestor, error) {
	return stream.NewIngestor(tbl, cfg)
}
