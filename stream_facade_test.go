package blowfish_test

import (
	"context"
	"errors"
	"testing"

	"blowfish"
)

// TestSessionStreamFacade drives the streaming flow end to end through the
// public facade: table → ingestor → session-bound stream → epoch close,
// with the epoch charge landing on the session's shared budget.
func TestSessionStreamFacade(t *testing.T) {
	dom, err := blowfish.LineDomain("v", 32)
	if err != nil {
		t.Fatal(err)
	}
	g, err := blowfish.DistanceThreshold(dom, 3)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := blowfish.NewSession(blowfish.NewPolicy(g), 1.0, blowfish.NewSource(1))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := blowfish.NewStreamTable(blowfish.NewDataset(dom))
	if err != nil {
		t.Fatal(err)
	}
	ing, err := blowfish.NewStreamIngestor(tbl, blowfish.StreamIngestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()
	st, err := sess.NewStream(tbl, blowfish.StreamConfig{Epsilon: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	if _, _, err := ing.Submit([]blowfish.StreamEvent{
		{Op: "append", Row: []int{4}},
		{Op: "append", Row: []int{9}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := ing.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	rel, err := st.CloseEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if rel.N != 2 || len(rel.Histogram) != 32 {
		t.Fatalf("release = %+v", rel)
	}
	// The epoch charge shares the session's budget: an ad-hoc release that
	// no longer fits is refused.
	if got := sess.Remaining(); got != 0.75 {
		t.Fatalf("Remaining = %v, want 0.75", got)
	}
	if _, err := sess.ReleaseHistogram(tbl.Dataset(), 0.8); !errors.Is(err, blowfish.ErrBudgetExceeded) {
		t.Fatalf("over-budget session release = %v, want ErrBudgetExceeded", err)
	}
}

// TestConstrainedPolicyRefusesStreaming pins the facade error: constrained
// policies stay on the legacy per-release path and cannot stream.
func TestConstrainedPolicyRefusesStreaming(t *testing.T) {
	dom, err := blowfish.LineDomain("v", 8)
	if err != nil {
		t.Fatal(err)
	}
	g, err := blowfish.DistanceThreshold(dom, 2)
	if err != nil {
		t.Fatal(err)
	}
	ds := blowfish.NewDataset(dom)
	if err := ds.Add(3); err != nil {
		t.Fatal(err)
	}
	set, err := blowfish.ConstraintsFromDataset([]blowfish.CountQuery{
		{Name: "low", Pred: func(p blowfish.Point) bool { return p < 4 }},
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := blowfish.NewSession(blowfish.NewConstrainedPolicy(g, set), 1.0, blowfish.NewSource(1))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := blowfish.NewStreamTable(ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.NewStream(tbl, blowfish.StreamConfig{Epsilon: 0.1}); err == nil {
		t.Fatal("constrained policy accepted a stream")
	}
}
